//! A stage-2 fault microbenchmark: the guest keeps touching fresh
//! unprotected pages, each touch faulting to the host for resolution.
//! Used by the TDX-ablation experiment (§6.1): the CCA-style interface
//! invokes the monitor for every page-table change, TDX-style insecure
//! tables do not.

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// Base of the unprotected half of the 48-bit IPA space.
const UNPROTECTED_BASE: u64 = 1 << 47;

/// The fault-storm application (vCPU 0 only).
#[derive(Debug)]
pub struct FaultStorm {
    remaining: u64,
    issued: u64,
    touch_next: bool,
}

impl FaultStorm {
    /// Creates a storm of `faults` page touches.
    pub fn new(faults: u64) -> FaultStorm {
        FaultStorm {
            remaining: faults,
            issued: 0,
            touch_next: true,
        }
    }

    /// Faults issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl AppLogic for FaultStorm {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi;
        }
        if self.remaining == 0 {
            return GuestOp::Shutdown;
        }
        if self.touch_next {
            self.touch_next = false;
            self.issued += 1;
            self.remaining -= 1;
            GuestOp::TouchShared {
                ipa: UNPROTECTED_BASE + self.issued * 4096,
            }
        } else {
            self.touch_next = true;
            GuestOp::Compute {
                work: SimDuration::micros(20),
            }
        }
    }

    fn on_irq(&mut self, _vcpu: u32, _irq: GuestIrq, _now: SimTime) {}

    fn stats(&self) -> WorkloadStats {
        let mut s = WorkloadStats::new();
        s.counters.add("faultstorm.faults", self.issued);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_touch_and_compute_then_stops() {
        let mut f = FaultStorm::new(2);
        assert!(matches!(
            f.next_op(0, SimTime::ZERO),
            GuestOp::TouchShared { .. }
        ));
        assert!(matches!(
            f.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        let second = f.next_op(0, SimTime::ZERO);
        match second {
            GuestOp::TouchShared { ipa } => assert_eq!(ipa, (1 << 47) + 2 * 4096),
            other => panic!("expected TouchShared, got {other:?}"),
        }
        f.next_op(0, SimTime::ZERO);
        assert!(matches!(f.next_op(0, SimTime::ZERO), GuestOp::Shutdown));
        assert_eq!(f.issued(), 2);
    }
}
