//! # cg-workloads — guest programs and benchmark workloads
//!
//! The guest side of the simulation: what runs *inside* a (confidential)
//! VM. A guest is modelled as a [`GuestProgram`] — a state machine that
//! yields architectural operations ([`GuestOp`]) and receives virtual
//! interrupts ([`GuestIrq`]). The system layer in `cg-core` drives it on
//! the simulated cores, charging compute through the microarchitectural
//! warmth model and routing I/O through the host stack.
//!
//! [`kernel::GuestKernel`] provides the guest-kernel behaviour every
//! workload shares — the periodic timer tick (the dominant exit source in
//! the paper's table 4), interrupt handling work, and an op queue — and
//! delegates application behaviour to an [`AppLogic`] implementation:
//!
//! * [`coremark::CoremarkPro`] — the CPU-intensive benchmark of figs. 6/7
//!   and table 4.
//! * [`netpipe::Netpipe`] — the ping-pong network benchmark of fig. 8.
//! * [`iozone::Iozone`] — sync virtio-blk read/write of fig. 9.
//! * [`redis::RedisServer`] — the request/response server of table 5
//!   (with [`peer::RedisClientPool`] as the 50-client load generator).
//! * [`kbuild::KernelBuild`] — the parallel compile of fig. 10.
//! * [`dirtier::Dirtier`] — the write-heavy working set live migration
//!   must chase (the `migrate` bench's guest).
//!
//! Network benchmarks talk to a [`peer::NetPeer`] — a model of the remote
//! host on the other end of the wire.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacker;
pub mod churn;
pub mod coremark;
pub mod dirtier;
pub mod faultstorm;
pub mod guest;
pub mod iozone;
pub mod ipibench;
pub mod ivc;
pub mod kbuild;
pub mod kernel;
pub mod netpipe;
pub mod peer;
pub mod redis;
pub mod service;

pub use guest::{GuestIrq, GuestOp, GuestProgram, WorkloadStats};
pub use kernel::{AppLogic, GuestKernel};
pub use peer::{EchoPeer, NetPeer, PeerPacket, RedisClientPool};
pub use service::{ServiceGuest, ServiceProfile};
