//! The Redis server model of table 5.
//!
//! Redis is single-threaded: vCPU 0 runs the event loop, processing
//! requests in arrival order; other vCPUs handle kernel work and idle.
//! Each command costs a service time (CPU) plus per-request network-stack
//! work, and produces a response of a command-dependent size. Requests
//! arrive from the [`crate::peer::RedisClientPool`] over the (SR-IOV)
//! NIC.

use std::collections::VecDeque;

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// The benchmarked Redis commands (table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedisCommand {
    /// `SET key <512-byte value>`.
    Set,
    /// `GET key` returning a 512-byte value.
    Get,
    /// `LRANGE key 0 99` returning 100 elements.
    Lrange100,
}

impl RedisCommand {
    /// Server-side CPU cost of executing the command (dictionary /
    /// list traversal work, excluding the network stack).
    pub fn service_time(self) -> SimDuration {
        match self {
            RedisCommand::Set => SimDuration::nanos(10_300),
            RedisCommand::Get => SimDuration::nanos(10_500),
            // LRANGE 100 walks and serialises 100 list nodes.
            RedisCommand::Lrange100 => SimDuration::nanos(75_500),
        }
    }

    /// Response payload size in bytes.
    pub fn response_bytes(self) -> u64 {
        match self {
            RedisCommand::Set => 64,          // +OK
            RedisCommand::Get => 576,         // 512-byte value + framing
            RedisCommand::Lrange100 => 6_400, // 100 × 64-byte elements
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    flow: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for requests.
    Idle,
    /// Executing the command for the front request.
    Executing,
    /// Response send queued next.
    Respond,
}

/// The Redis server application.
#[derive(Debug)]
pub struct RedisServer {
    command: RedisCommand,
    device: u32,
    /// Per-request guest network-stack work (driver + TCP/IP in + out).
    stack_work: SimDuration,
    queue: VecDeque<PendingRequest>,
    state: State,
    served: u64,
}

impl RedisServer {
    /// Creates a server executing `command` for every request, on guest
    /// device `device`.
    pub fn new(command: RedisCommand, device: u32) -> RedisServer {
        RedisServer {
            command,
            device,
            stack_work: SimDuration::nanos(6_200),
            queue: VecDeque::new(),
            state: State::Idle,
            served: 0,
        }
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The benchmarked command.
    pub fn command(&self) -> RedisCommand {
        self.command
    }

    /// Queued (not yet executed) requests.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

impl AppLogic for RedisServer {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        if vcpu != 0 {
            // Redis is single-threaded; helper vCPUs idle.
            return GuestOp::Wfi;
        }
        match self.state {
            State::Idle => {
                if self.queue.is_empty() {
                    GuestOp::Wfi
                } else {
                    self.state = State::Executing;
                    GuestOp::Compute {
                        work: self.stack_work + self.command.service_time(),
                    }
                }
            }
            State::Executing => {
                // The compute completed: send the response.
                self.state = State::Respond;
                let req = self.queue.pop_front().expect("executing implies queued");
                self.served += 1;
                GuestOp::NetSend {
                    device: self.device,
                    bytes: self.command.response_bytes(),
                    flow: req.flow,
                }
            }
            State::Respond => {
                // Response sent: back to the loop.
                self.state = State::Idle;
                self.next_op(vcpu, _now)
            }
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, _now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::NetRx { flow, .. } = irq {
            self.queue.push_back(PendingRequest { flow });
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        stats.counters.add("redis.served", self.served);
        stats.counters.add("redis.backlog", self.queue.len() as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(flow: u64) -> GuestIrq {
        GuestIrq::NetRx {
            device: 0,
            bytes: 512,
            flow,
        }
    }

    #[test]
    fn serves_requests_in_order() {
        let mut srv = RedisServer::new(RedisCommand::Get, 0);
        assert!(matches!(srv.next_op(0, SimTime::ZERO), GuestOp::Wfi));
        srv.on_irq(0, rx(3), SimTime::ZERO);
        srv.on_irq(0, rx(7), SimTime::ZERO);
        // Execute, respond to flow 3.
        assert!(matches!(
            srv.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        match srv.next_op(0, SimTime::ZERO) {
            GuestOp::NetSend { flow, bytes, .. } => {
                assert_eq!(flow, 3);
                assert_eq!(bytes, RedisCommand::Get.response_bytes());
            }
            other => panic!("expected NetSend, got {other:?}"),
        }
        // Next request follows without WFI (backlog non-empty).
        assert!(matches!(
            srv.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        match srv.next_op(0, SimTime::ZERO) {
            GuestOp::NetSend { flow, .. } => assert_eq!(flow, 7),
            other => panic!("expected NetSend, got {other:?}"),
        }
        assert!(matches!(srv.next_op(0, SimTime::ZERO), GuestOp::Wfi));
        assert_eq!(srv.served(), 2);
    }

    #[test]
    fn command_costs_are_ordered() {
        assert!(RedisCommand::Lrange100.service_time() > RedisCommand::Set.service_time());
        assert!(RedisCommand::Lrange100.response_bytes() > RedisCommand::Get.response_bytes());
    }

    #[test]
    fn helper_vcpus_idle() {
        let mut srv = RedisServer::new(RedisCommand::Set, 0);
        srv.on_irq(1, rx(1), SimTime::ZERO);
        assert_eq!(srv.backlog(), 0);
        assert!(matches!(srv.next_op(1, SimTime::ZERO), GuestOp::Wfi));
    }

    #[test]
    fn stats_report_served_and_backlog() {
        let mut srv = RedisServer::new(RedisCommand::Set, 0);
        srv.on_irq(0, rx(1), SimTime::ZERO);
        let s = srv.stats();
        assert_eq!(s.counters.get("redis.backlog"), 1);
        assert_eq!(s.counters.get("redis.served"), 0);
    }
}
