//! Inter-CVM channel workloads: the ping-pong latency sweep and a
//! streaming producer/consumer pair, both running over an attested
//! cg-ivc shared-memory channel between two core-gapped realms.
//!
//! Unlike the network benchmarks, both ends live *inside* the simulated
//! machine: each side is an [`AppLogic`] hosted in its own realm, and
//! messages travel realm-core → realm-core through the channel ring and
//! its delegated doorbell SGI — the host never runs on the data path.

use std::collections::{BTreeMap, VecDeque};

use cg_sim::{Samples, SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// State of the current ping-pong round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Touch the outgoing buffer (copy/checksum work).
    Prep,
    /// Ready to publish the next message.
    Send,
    /// Waiting for the echo.
    Wait,
    /// Touch the received buffer.
    Consume,
    /// All sizes done.
    Done,
}

/// The initiating side of the IVC ping-pong (vCPU 0 only): sweeps
/// message sizes, publishing each into the channel and timing the round
/// trip until the peer's echo drains back. The IVC analogue of
/// [`crate::netpipe::Netpipe`].
#[derive(Debug)]
pub struct IvcPing {
    channel: u32,
    /// Message sizes to sweep.
    sizes: Vec<u64>,
    /// Repetitions per size.
    reps: u32,
    size_idx: usize,
    rep: u32,
    phase: Phase,
    sent_at: SimTime,
    seq: u64,
    /// Guest-side per-byte buffer work in nanoseconds (the copy into and
    /// out of the shared window).
    touch_ns_per_byte: f64,
    /// RTT samples (µs) per size.
    rtts: BTreeMap<u64, Samples>,
}

impl IvcPing {
    /// Creates the benchmark sweeping `sizes` with `reps` round trips
    /// each over channel `channel`.
    pub fn new(channel: u32, sizes: Vec<u64>, reps: u32) -> IvcPing {
        assert!(!sizes.is_empty() && reps > 0, "empty IVC ping-pong sweep");
        IvcPing {
            channel,
            sizes,
            reps,
            size_idx: 0,
            rep: 0,
            phase: Phase::Prep,
            sent_at: SimTime::ZERO,
            seq: 0,
            touch_ns_per_byte: 0.15,
            rtts: BTreeMap::new(),
        }
    }

    /// The default sweep: 64 B to 1 MiB, powers of four.
    pub fn standard(channel: u32, reps: u32) -> IvcPing {
        IvcPing::new(
            channel,
            vec![64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20],
            reps,
        )
    }

    /// Sets the guest-side per-byte buffer cost (ns/byte).
    pub fn with_touch_cost(mut self, ns_per_byte: f64) -> IvcPing {
        self.touch_ns_per_byte = ns_per_byte;
        self
    }

    /// Returns `true` once all sizes completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// RTT samples per message size (µs).
    pub fn rtts(&self) -> &BTreeMap<u64, Samples> {
        &self.rtts
    }

    fn current_size(&self) -> u64 {
        self.sizes[self.size_idx]
    }
}

impl AppLogic for IvcPing {
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi; // helper vCPUs idle
        }
        match self.phase {
            Phase::Prep => {
                self.phase = Phase::Send;
                // RTT measurement starts before buffer preparation, as
                // in NetPIPE.
                self.sent_at = now;
                GuestOp::Compute {
                    work: SimDuration::from_nanos_f64(
                        self.current_size() as f64 * self.touch_ns_per_byte,
                    ),
                }
            }
            Phase::Send => {
                self.phase = Phase::Wait;
                self.seq += 1;
                GuestOp::IvcSend {
                    channel: self.channel,
                    bytes: self.current_size(),
                    seq: self.seq,
                }
            }
            Phase::Wait => GuestOp::Wfi,
            Phase::Consume => {
                self.phase = Phase::Prep;
                GuestOp::Compute {
                    work: SimDuration::from_nanos_f64(
                        self.current_size() as f64 * self.touch_ns_per_byte,
                    ),
                }
            }
            Phase::Done => GuestOp::Shutdown,
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::IvcRecv { channel, seq, .. } = irq {
            if channel == self.channel && self.phase == Phase::Wait && seq == self.seq {
                let rtt = now.duration_since(self.sent_at).as_micros_f64();
                let size = self.current_size();
                self.rtts.entry(size).or_default().record(rtt);
                self.rep += 1;
                if self.rep >= self.reps {
                    self.rep = 0;
                    self.size_idx += 1;
                }
                self.phase = if self.size_idx >= self.sizes.len() {
                    Phase::Done
                } else {
                    Phase::Consume
                };
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        for (size, samples) in &self.rtts {
            stats
                .samples
                .insert(format!("ivc_rtt_us_{size}"), samples.clone());
        }
        stats.counters.add("ivc.round_trips", self.seq);
        stats
    }
}

/// The echo side of the IVC ping-pong: idles in WFI and bounces every
/// drained message straight back on the same channel (the IVC analogue
/// of [`crate::peer::EchoPeer`], but running inside a realm).
#[derive(Debug)]
pub struct IvcEcho {
    channel: u32,
    /// Messages drained but not yet echoed: `(bytes, seq)`.
    pending: VecDeque<(u64, u64)>,
    echoed: u64,
    /// Shut down after this many echoes (`None` = echo forever).
    limit: Option<u64>,
}

impl IvcEcho {
    /// Creates an echo guest for channel `channel`.
    pub fn new(channel: u32) -> IvcEcho {
        IvcEcho {
            channel,
            pending: VecDeque::new(),
            echoed: 0,
            limit: None,
        }
    }

    /// Shuts the guest down after `n` echoes (so a benchmark run with a
    /// known round count can terminate cleanly).
    pub fn with_limit(mut self, n: u64) -> IvcEcho {
        self.limit = Some(n);
        self
    }

    /// Messages echoed so far.
    pub fn echoed(&self) -> u64 {
        self.echoed
    }
}

impl AppLogic for IvcEcho {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi;
        }
        match self.pending.pop_front() {
            Some((bytes, seq)) => {
                self.echoed += 1;
                GuestOp::IvcSend {
                    channel: self.channel,
                    bytes,
                    seq,
                }
            }
            None if self.limit.is_some_and(|n| self.echoed >= n) => GuestOp::Shutdown,
            None => GuestOp::Wfi,
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, _now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::IvcRecv {
            channel,
            bytes,
            seq,
        } = irq
        {
            if channel == self.channel {
                self.pending.push_back((bytes, seq));
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        stats.counters.add("ivc.echoed", self.echoed);
        stats
    }
}

/// The producing side of the streaming pair: publishes `count` messages
/// of `bytes` each, pacing with per-message compute, then shuts down.
#[derive(Debug)]
pub struct IvcProducer {
    channel: u32,
    bytes: u64,
    count: u64,
    /// Per-message pacing compute (models generating the payload).
    pace: SimDuration,
    sent: u64,
    /// `true` when the next op is the pacing compute (alternates with
    /// the publish).
    pacing: bool,
}

impl IvcProducer {
    /// Creates a producer publishing `count` messages of `bytes` on
    /// channel `channel`, with `pace` compute before each.
    pub fn new(channel: u32, bytes: u64, count: u64, pace: SimDuration) -> IvcProducer {
        assert!(count > 0, "empty IVC stream");
        IvcProducer {
            channel,
            bytes,
            count,
            pace,
            sent: 0,
            pacing: true,
        }
    }

    /// Messages published so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl AppLogic for IvcProducer {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi;
        }
        if self.sent >= self.count {
            return GuestOp::Shutdown;
        }
        if self.pacing {
            self.pacing = false;
            GuestOp::Compute { work: self.pace }
        } else {
            self.pacing = true;
            self.sent += 1;
            GuestOp::IvcSend {
                channel: self.channel,
                bytes: self.bytes,
                seq: self.sent,
            }
        }
    }

    fn on_irq(&mut self, _vcpu: u32, _irq: GuestIrq, _now: SimTime) {}

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        stats.counters.add("ivc.produced", self.sent);
        stats
    }
}

/// The consuming side of the streaming pair: idles in WFI, counts
/// drained messages, verifies the producer's sequence numbers arrive in
/// order, and records inter-arrival gaps.
#[derive(Debug)]
pub struct IvcConsumer {
    channel: u32,
    expected: u64,
    received: u64,
    /// Highest sequence number seen (producer counts from 1).
    last_seq: u64,
    out_of_order: u64,
    last_arrival: Option<SimTime>,
    /// Inter-arrival gaps (µs).
    gaps: Samples,
}

impl IvcConsumer {
    /// Creates a consumer expecting `expected` messages on `channel`.
    pub fn new(channel: u32, expected: u64) -> IvcConsumer {
        IvcConsumer {
            channel,
            expected,
            received: 0,
            last_seq: 0,
            out_of_order: 0,
            last_arrival: None,
            gaps: Samples::new(),
        }
    }

    /// Messages drained so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Returns `true` once all expected messages arrived.
    pub fn is_done(&self) -> bool {
        self.received >= self.expected
    }

    /// Messages that arrived with a non-monotonic sequence number.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }
}

impl AppLogic for IvcConsumer {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi;
        }
        if self.is_done() {
            GuestOp::Shutdown
        } else {
            GuestOp::Wfi
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::IvcRecv { channel, seq, .. } = irq {
            if channel != self.channel {
                return;
            }
            self.received += 1;
            if seq <= self.last_seq {
                self.out_of_order += 1;
            } else {
                self.last_seq = seq;
            }
            if let Some(prev) = self.last_arrival {
                self.gaps.record(now.duration_since(prev).as_micros_f64());
            }
            self.last_arrival = Some(now);
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        stats.counters.add("ivc.consumed", self.received);
        stats.counters.add("ivc.out_of_order", self.out_of_order);
        stats
            .samples
            .insert("ivc_gap_us".to_owned(), self.gaps.clone());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv(channel: u32, bytes: u64, seq: u64) -> GuestIrq {
        GuestIrq::IvcRecv {
            channel,
            bytes,
            seq,
        }
    }

    /// Advances through the Prep compute and returns the publish op.
    fn prep_then_send(p: &mut IvcPing, t: SimTime) -> GuestOp {
        assert!(matches!(p.next_op(0, t), GuestOp::Compute { .. }));
        p.next_op(0, t)
    }

    #[test]
    fn ping_pong_sequence() {
        let mut p = IvcPing::new(3, vec![64, 256], 1);
        let t0 = SimTime::ZERO;
        match prep_then_send(&mut p, t0) {
            GuestOp::IvcSend {
                channel,
                bytes,
                seq,
            } => {
                assert_eq!(channel, 3);
                assert_eq!(bytes, 64);
                assert_eq!(seq, 1);
            }
            other => panic!("expected IvcSend, got {other:?}"),
        }
        assert!(matches!(p.next_op(0, t0), GuestOp::Wfi));
        p.on_irq(0, recv(3, 64, 1), t0 + SimDuration::micros(10));
        assert!(!p.is_done());
        assert!(matches!(p.next_op(0, t0), GuestOp::Compute { .. })); // consume
        assert!(matches!(
            prep_then_send(&mut p, t0),
            GuestOp::IvcSend { bytes: 256, .. }
        ));
        p.on_irq(0, recv(3, 256, 2), t0 + SimDuration::micros(30));
        assert!(p.is_done());
        assert!(matches!(p.next_op(0, t0), GuestOp::Shutdown));
        assert_eq!(p.rtts()[&64].len(), 1);
        assert!((p.stats().sample("ivc_rtt_us_64").unwrap().mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_channel_or_stale_seq_ignored() {
        let mut p = IvcPing::new(3, vec![64], 1);
        prep_then_send(&mut p, SimTime::ZERO);
        p.on_irq(0, recv(9, 64, 1), SimTime::ZERO); // wrong channel
        p.on_irq(0, recv(3, 64, 7), SimTime::ZERO); // wrong seq
        assert!(!p.is_done());
        assert!(p.rtts().is_empty());
    }

    #[test]
    fn echo_bounces_in_order() {
        let mut e = IvcEcho::new(3);
        assert!(matches!(e.next_op(0, SimTime::ZERO), GuestOp::Wfi));
        e.on_irq(0, recv(3, 64, 1), SimTime::ZERO);
        e.on_irq(0, recv(3, 128, 2), SimTime::ZERO);
        e.on_irq(0, recv(9, 256, 3), SimTime::ZERO); // other channel: ignored
        match e.next_op(0, SimTime::ZERO) {
            GuestOp::IvcSend { bytes, seq, .. } => {
                assert_eq!((bytes, seq), (64, 1));
            }
            other => panic!("expected IvcSend, got {other:?}"),
        }
        assert!(matches!(
            e.next_op(0, SimTime::ZERO),
            GuestOp::IvcSend {
                bytes: 128,
                seq: 2,
                ..
            }
        ));
        assert!(matches!(e.next_op(0, SimTime::ZERO), GuestOp::Wfi));
        assert_eq!(e.echoed(), 2);
    }

    #[test]
    fn producer_paces_then_publishes() {
        let mut p = IvcProducer::new(5, 4096, 2, SimDuration::micros(3));
        assert!(matches!(
            p.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        assert!(matches!(
            p.next_op(0, SimTime::ZERO),
            GuestOp::IvcSend { seq: 1, .. }
        ));
        assert!(matches!(
            p.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        assert!(matches!(
            p.next_op(0, SimTime::ZERO),
            GuestOp::IvcSend { seq: 2, .. }
        ));
        assert!(matches!(p.next_op(0, SimTime::ZERO), GuestOp::Shutdown));
        assert_eq!(p.sent(), 2);
    }

    #[test]
    fn consumer_counts_and_orders() {
        let mut c = IvcConsumer::new(5, 3);
        let t0 = SimTime::ZERO;
        assert!(matches!(c.next_op(0, t0), GuestOp::Wfi));
        c.on_irq(0, recv(5, 64, 1), t0);
        c.on_irq(0, recv(5, 64, 2), t0 + SimDuration::micros(4));
        c.on_irq(0, recv(5, 64, 2), t0 + SimDuration::micros(8)); // duplicate
        assert!(c.is_done());
        assert_eq!(c.received(), 3);
        assert_eq!(c.out_of_order(), 1);
        assert!(matches!(c.next_op(0, t0), GuestOp::Shutdown));
        let stats = c.stats();
        assert_eq!(stats.counters.get("ivc.consumed"), 3);
        assert_eq!(stats.sample("ivc_gap_us").unwrap().len(), 2);
    }
}
