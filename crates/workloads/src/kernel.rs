//! The guest kernel model: ticks, interrupt handling work, op queueing.
//!
//! Every Linux-like guest shares this behaviour regardless of workload:
//! a periodic timer tick on each vCPU (CONFIG_HZ; the paper's dominant
//! exit source without delegation — two exits per tick, §4.4), a little
//! kernel work per tick and per interrupt, and an application driving the
//! time in between.

use std::collections::VecDeque;
use std::fmt;

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, GuestProgram, WorkloadStats};

/// Application behaviour under the guest kernel.
///
/// Implementations never see timer management — the kernel owns the
/// tick. They receive all other interrupts (IPIs, I/O completions).
pub trait AppLogic: fmt::Debug {
    /// The next application operation for `vcpu`.
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp;

    /// A non-tick interrupt was delivered to `vcpu`.
    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime);

    /// Final statistics.
    fn stats(&self) -> WorkloadStats;
}

#[derive(Debug)]
struct VcpuKernel {
    /// Ops queued by the kernel ahead of application ops.
    queue: VecDeque<GuestOp>,
    /// Next tick deadline (programmed lazily).
    next_tick: SimTime,
    /// Whether the tick timer is currently programmed.
    tick_armed: bool,
}

/// The guest kernel wrapping an application.
///
/// # Example
///
/// ```
/// use cg_sim::{SimDuration, SimTime};
/// use cg_workloads::{GuestOp, GuestProgram};
/// use cg_workloads::coremark::CoremarkPro;
/// use cg_workloads::kernel::GuestKernel;
///
/// let app = CoremarkPro::new(1, SimDuration::micros(100));
/// let mut guest = GuestKernel::new(1, 250, Box::new(app));
/// // The very first op programs the tick timer.
/// let op = guest.next_op(0, SimTime::ZERO);
/// assert!(matches!(op, GuestOp::ProgramTick { .. }));
/// ```
#[derive(Debug)]
pub struct GuestKernel {
    vcpus: Vec<VcpuKernel>,
    /// Tick frequency.
    hz: u32,
    /// Kernel work per tick (scheduler/timekeeping).
    tick_work: SimDuration,
    /// Kernel work per taken interrupt (entry + handler glue).
    irq_work: SimDuration,
    /// Period between background console writes (None = disabled).
    console_period: Option<SimDuration>,
    next_console: Vec<SimTime>,
    app: Box<dyn AppLogic>,
    ticks_handled: u64,
}

impl GuestKernel {
    /// Creates a guest with `num_vcpus` vCPUs ticking at `hz`.
    pub fn new(num_vcpus: u32, hz: u32, app: Box<dyn AppLogic>) -> GuestKernel {
        GuestKernel {
            vcpus: (0..num_vcpus)
                .map(|_| VcpuKernel {
                    queue: VecDeque::new(),
                    next_tick: SimTime::ZERO,
                    tick_armed: false,
                })
                .collect(),
            hz,
            tick_work: SimDuration::micros(3),
            irq_work: SimDuration::nanos(1_500),
            console_period: None,
            next_console: vec![SimTime::ZERO; num_vcpus as usize],
            app,
            ticks_handled: 0,
        }
    }

    /// Enables periodic console MMIO writes (background exits) every
    /// `period` per vCPU.
    pub fn with_console_writes(mut self, period: SimDuration) -> GuestKernel {
        self.console_period = Some(period);
        self
    }

    /// Number of vCPUs.
    pub fn num_vcpus(&self) -> u32 {
        self.vcpus.len() as u32
    }

    /// The tick period.
    pub fn tick_period(&self) -> SimDuration {
        SimDuration::nanos(1_000_000_000 / self.hz as u64)
    }

    /// Ticks handled across all vCPUs.
    pub fn ticks_handled(&self) -> u64 {
        self.ticks_handled
    }

    /// Immutable access to the application.
    pub fn app(&self) -> &dyn AppLogic {
        self.app.as_ref()
    }
}

impl GuestProgram for GuestKernel {
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp {
        let period = self.tick_period();
        let v = &mut self.vcpus[vcpu as usize];
        // Kernel-queued work first.
        if let Some(op) = v.queue.pop_front() {
            return op;
        }
        // Keep the tick armed. First arming staggers vCPUs across the
        // period (real guests do not tick in lockstep).
        let num_vcpus = self.vcpus.len();
        let v = &mut self.vcpus[vcpu as usize];
        if !v.tick_armed {
            v.tick_armed = true;
            if v.next_tick <= now {
                let stagger = period.scaled((vcpu as f64 + 1.0) / num_vcpus as f64);
                v.next_tick = now + stagger;
            }
            return GuestOp::ProgramTick {
                deadline: v.next_tick,
            };
        }
        // Background console traffic, staggered across vCPUs.
        if let Some(cp) = self.console_period {
            let nc = &mut self.next_console[vcpu as usize];
            if *nc == SimTime::ZERO {
                *nc = now
                    + cp.scaled((vcpu as f64 + 1.0) / self.vcpus.len() as f64)
                    + SimDuration::nanos(1);
            } else if *nc <= now {
                *nc = now + cp;
                return GuestOp::ConsoleWrite;
            }
        }
        self.app.next_op(vcpu, now)
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime) {
        let tick_work = self.tick_work;
        let irq_work = self.irq_work;
        let period = self.tick_period();
        let v = &mut self.vcpus[vcpu as usize];
        match irq {
            GuestIrq::Tick => {
                self.ticks_handled += 1;
                v.tick_armed = false;
                v.next_tick = now + period;
                // Tick handler work, then the next ProgramTick comes out
                // of the normal next_op flow.
                v.queue.push_back(GuestOp::Compute { work: tick_work });
            }
            other => {
                v.queue.push_back(GuestOp::Compute { work: irq_work });
                self.app.on_irq(vcpu, other, now);
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = self.app.stats();
        stats.counters.add("kernel.ticks", self.ticks_handled);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial app that computes forever.
    #[derive(Debug)]
    struct Spin;

    impl AppLogic for Spin {
        fn next_op(&mut self, _vcpu: u32, _now: SimTime) -> GuestOp {
            GuestOp::Compute {
                work: SimDuration::micros(50),
            }
        }
        fn on_irq(&mut self, _vcpu: u32, _irq: GuestIrq, _now: SimTime) {}
        fn stats(&self) -> WorkloadStats {
            WorkloadStats::new()
        }
    }

    fn guest(vcpus: u32) -> GuestKernel {
        GuestKernel::new(vcpus, 250, Box::new(Spin))
    }

    #[test]
    fn first_op_programs_tick() {
        let mut g = guest(1);
        match g.next_op(0, SimTime::ZERO) {
            GuestOp::ProgramTick { deadline } => {
                assert_eq!(deadline, SimTime::ZERO + SimDuration::millis(4));
            }
            other => panic!("expected ProgramTick, got {other:?}"),
        }
        // Then application ops.
        assert!(matches!(
            g.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
    }

    #[test]
    fn tick_irq_yields_tick_work_then_reprogram() {
        let mut g = guest(1);
        g.next_op(0, SimTime::ZERO); // arm
        let t = SimTime::from_nanos(4_000_000);
        g.on_irq(0, GuestIrq::Tick, t);
        // Tick handler work first.
        assert!(
            matches!(g.next_op(0, t), GuestOp::Compute { work } if work == SimDuration::micros(3))
        );
        // Then the timer is re-armed for one period later.
        match g.next_op(0, t) {
            GuestOp::ProgramTick { deadline } => {
                assert_eq!(deadline, t + SimDuration::millis(4))
            }
            other => panic!("expected ProgramTick, got {other:?}"),
        }
        assert_eq!(g.ticks_handled(), 1);
    }

    #[test]
    fn non_tick_irq_charges_irq_work() {
        let mut g = guest(1);
        g.next_op(0, SimTime::ZERO);
        g.on_irq(0, GuestIrq::Ipi { sgi: 3 }, SimTime::ZERO);
        assert!(matches!(
            g.next_op(0, SimTime::ZERO),
            GuestOp::Compute { work } if work == SimDuration::nanos(1_500)
        ));
    }

    #[test]
    fn console_writes_appear_periodically_after_stagger() {
        let mut g = guest(1).with_console_writes(SimDuration::millis(10));
        g.next_op(0, SimTime::ZERO); // arm timer
                                     // The first call initialises the staggered schedule — no write yet.
        assert!(matches!(
            g.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        let later = SimTime::ZERO + SimDuration::millis(11);
        assert!(matches!(g.next_op(0, later), GuestOp::ConsoleWrite));
        // Immediately after, no console write until the period elapses.
        assert!(matches!(g.next_op(0, later), GuestOp::Compute { .. }));
        let even_later = later + SimDuration::millis(11);
        assert!(matches!(g.next_op(0, even_later), GuestOp::ConsoleWrite));
    }

    #[test]
    fn vcpus_tick_independently() {
        let mut g = guest(2);
        g.next_op(0, SimTime::ZERO);
        g.next_op(1, SimTime::ZERO);
        g.on_irq(0, GuestIrq::Tick, SimTime::from_nanos(4_000_000));
        // vCPU 1 is unaffected: its next op is still app compute.
        assert!(matches!(
            g.next_op(1, SimTime::from_nanos(4_000_000)),
            GuestOp::Compute { work } if work == SimDuration::micros(50)
        ));
        assert_eq!(g.ticks_handled(), 1);
    }

    #[test]
    fn stats_include_kernel_ticks() {
        let mut g = guest(1);
        g.next_op(0, SimTime::ZERO);
        g.on_irq(0, GuestIrq::Tick, SimTime::from_nanos(4_000_000));
        assert_eq!(g.stats().counters.get("kernel.ticks"), 1);
    }
}
