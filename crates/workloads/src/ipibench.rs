//! The virtual-IPI latency microbenchmark of table 3.
//!
//! vCPU 0 sends an SGI to vCPU 1 at a fixed period; vCPU 1 sits in WFI
//! and acknowledges each one. The system layer measures the time from
//! the sender's `ICC_SGI1R` write to the receiver's acknowledgement —
//! exactly the quantity table 3 reports for the three configurations.

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// The IPI ping benchmark.
#[derive(Debug)]
pub struct IpiBench {
    period: SimDuration,
    next_send: SimTime,
    sent: u64,
    received: u64,
    target_sends: u64,
}

impl IpiBench {
    /// Creates a benchmark sending `target_sends` IPIs, one every
    /// `period`.
    pub fn new(period: SimDuration, target_sends: u64) -> IpiBench {
        IpiBench {
            period,
            next_send: SimTime::ZERO,
            sent: 0,
            received: 0,
            target_sends,
        }
    }

    /// IPIs sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// IPIs acknowledged by the receiver.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl AppLogic for IpiBench {
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi; // the receiver just waits
        }
        if self.sent >= self.target_sends {
            return GuestOp::Shutdown;
        }
        if now >= self.next_send {
            self.sent += 1;
            self.next_send = now + self.period;
            GuestOp::SendIpi { target: 1, sgi: 3 }
        } else {
            // Pace the sends with compute (WFI would stop the clock).
            GuestOp::Compute {
                work: self
                    .next_send
                    .duration_since(now)
                    .min(SimDuration::micros(50)),
            }
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, _now: SimTime) {
        if vcpu == 1 {
            if let GuestIrq::Ipi { .. } = irq {
                self.received += 1;
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut s = WorkloadStats::new();
        s.counters.add("ipi.sent", self.sent);
        s.counters.add("ipi.received", self.received);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_paces_and_stops() {
        let mut b = IpiBench::new(SimDuration::micros(100), 2);
        let t0 = SimTime::ZERO;
        assert!(matches!(
            b.next_op(0, t0),
            GuestOp::SendIpi { target: 1, sgi: 3 }
        ));
        // Immediately after: compute until the next period.
        assert!(matches!(b.next_op(0, t0), GuestOp::Compute { .. }));
        let t1 = t0 + SimDuration::micros(100);
        assert!(matches!(b.next_op(0, t1), GuestOp::SendIpi { .. }));
        let t2 = t1 + SimDuration::micros(100);
        assert!(matches!(b.next_op(0, t2), GuestOp::Shutdown));
    }

    #[test]
    fn receiver_counts_ipis() {
        let mut b = IpiBench::new(SimDuration::micros(100), 5);
        assert!(matches!(b.next_op(1, SimTime::ZERO), GuestOp::Wfi));
        b.on_irq(1, GuestIrq::Ipi { sgi: 3 }, SimTime::ZERO);
        b.on_irq(0, GuestIrq::Ipi { sgi: 3 }, SimTime::ZERO); // sender irq ignored
        assert_eq!(b.received(), 1);
    }
}
