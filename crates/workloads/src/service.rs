//! The fleet serving tenant: a generic request/response service.
//!
//! Where [`crate::redis::RedisServer`] models one specific benchmark,
//! `ServiceGuest` models the tenant a serving fleet hosts: requests
//! arrive over the NIC, cost CPU proportional to their size, and
//! produce a response. Unlike Redis it is multi-threaded — every vCPU
//! runs the serving loop over a shared accept queue — so an elastic
//! scale-up (`resize_vm`) genuinely adds serving capacity, which is
//! what the fleet's SLO→elastic feedback loop exercises.

use std::collections::VecDeque;

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// What a request costs the tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceProfile {
    /// Echo: bounce the payload back after fixed per-request stack
    /// work (a cache/proxy-like tenant; network-bound).
    Echo,
    /// Compute: charge `base` plus `per_kb` per 1024 request bytes,
    /// then respond with a fixed-size result (an inference/query-like
    /// tenant; CPU-bound).
    Compute {
        /// Base service time per request.
        base: SimDuration,
        /// Additional service time per KiB of request payload.
        per_kb: SimDuration,
        /// Response payload size.
        response_bytes: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    flow: u64,
    bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VcpuState {
    /// No request in hand.
    Idle,
    /// Executing the request's service work.
    Executing,
    /// Response send queued next.
    Respond,
}

/// The serving-fleet tenant application.
#[derive(Debug)]
pub struct ServiceGuest {
    profile: ServiceProfile,
    device: u32,
    /// Per-request guest network-stack work (driver + TCP/IP in + out).
    stack_work: SimDuration,
    /// Shared accept queue all vCPUs pull from.
    queue: VecDeque<Pending>,
    /// Per-vCPU serving loop state, grown on first use.
    vcpus: Vec<(VcpuState, Pending)>,
    served: u64,
}

impl ServiceGuest {
    /// An echo tenant on guest device `device`.
    pub fn echo(device: u32) -> ServiceGuest {
        ServiceGuest::new(ServiceProfile::Echo, device)
    }

    /// A compute tenant on guest device `device` costing `base` plus
    /// `per_kb` per request KiB, responding with `response_bytes`.
    pub fn compute(
        device: u32,
        base: SimDuration,
        per_kb: SimDuration,
        response_bytes: u64,
    ) -> ServiceGuest {
        ServiceGuest::new(
            ServiceProfile::Compute {
                base,
                per_kb,
                response_bytes,
            },
            device,
        )
    }

    /// A tenant with an explicit [`ServiceProfile`].
    pub fn new(profile: ServiceProfile, device: u32) -> ServiceGuest {
        ServiceGuest {
            profile,
            device,
            stack_work: SimDuration::nanos(6_200),
            queue: VecDeque::new(),
            vcpus: Vec::new(),
            served: 0,
        }
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests accepted but not yet picked up by a vCPU.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// The cost profile.
    pub fn profile(&self) -> ServiceProfile {
        self.profile
    }

    fn service_time(&self, bytes: u64) -> SimDuration {
        match self.profile {
            ServiceProfile::Echo => SimDuration::ZERO,
            ServiceProfile::Compute { base, per_kb, .. } => {
                base + per_kb.scaled(bytes as f64 / 1024.0)
            }
        }
    }

    fn response_bytes(&self, request_bytes: u64) -> u64 {
        match self.profile {
            ServiceProfile::Echo => request_bytes,
            ServiceProfile::Compute { response_bytes, .. } => response_bytes,
        }
    }

    fn state(&mut self, vcpu: u32) -> &mut (VcpuState, Pending) {
        let idx = vcpu as usize;
        while self.vcpus.len() <= idx {
            self.vcpus
                .push((VcpuState::Idle, Pending { flow: 0, bytes: 0 }));
        }
        &mut self.vcpus[idx]
    }
}

impl AppLogic for ServiceGuest {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        let mut state = self.state(vcpu).0;
        if state == VcpuState::Respond {
            // Response sent: back to the accept queue this same op.
            self.state(vcpu).0 = VcpuState::Idle;
            state = VcpuState::Idle;
        }
        match state {
            VcpuState::Idle => match self.queue.pop_front() {
                None => GuestOp::Wfi,
                Some(req) => {
                    let work = self.stack_work + self.service_time(req.bytes);
                    *self.state(vcpu) = (VcpuState::Executing, req);
                    GuestOp::Compute { work }
                }
            },
            VcpuState::Executing => {
                // Service work done: send the response.
                let req = self.state(vcpu).1;
                self.state(vcpu).0 = VcpuState::Respond;
                self.served += 1;
                GuestOp::NetSend {
                    device: self.device,
                    bytes: self.response_bytes(req.bytes),
                    flow: req.flow,
                }
            }
            VcpuState::Respond => unreachable!("cleared to Idle above"),
        }
    }

    fn on_irq(&mut self, _vcpu: u32, irq: GuestIrq, _now: SimTime) {
        // Any vCPU may take the RX interrupt; the queue is shared.
        if let GuestIrq::NetRx { flow, bytes, .. } = irq {
            self.queue.push_back(Pending { flow, bytes });
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        stats.counters.add("service.served", self.served);
        stats
            .counters
            .add("service.backlog", self.queue.len() as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(flow: u64, bytes: u64) -> GuestIrq {
        GuestIrq::NetRx {
            device: 0,
            bytes,
            flow,
        }
    }

    #[test]
    fn echo_bounces_request_bytes() {
        let mut srv = ServiceGuest::echo(0);
        assert!(matches!(srv.next_op(0, SimTime::ZERO), GuestOp::Wfi));
        srv.on_irq(0, rx(9, 700), SimTime::ZERO);
        assert!(matches!(
            srv.next_op(0, SimTime::ZERO),
            GuestOp::Compute { work } if work == SimDuration::nanos(6_200)
        ));
        match srv.next_op(0, SimTime::ZERO) {
            GuestOp::NetSend { flow, bytes, .. } => {
                assert_eq!(flow, 9);
                assert_eq!(bytes, 700);
            }
            other => panic!("expected NetSend, got {other:?}"),
        }
        assert_eq!(srv.served(), 1);
    }

    #[test]
    fn compute_cost_scales_with_request_size() {
        let srv = ServiceGuest::compute(0, SimDuration::micros(20), SimDuration::micros(4), 256);
        assert_eq!(srv.service_time(1024), SimDuration::micros(24));
        assert!(srv.service_time(4096) > srv.service_time(1024));
        assert_eq!(srv.response_bytes(4096), 256);
    }

    #[test]
    fn vcpus_share_the_accept_queue() {
        let mut srv = ServiceGuest::echo(0);
        srv.on_irq(0, rx(1, 100), SimTime::ZERO);
        srv.on_irq(0, rx(2, 100), SimTime::ZERO);
        // Two different vCPUs each pick up one request.
        assert!(matches!(
            srv.next_op(0, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        assert!(matches!(
            srv.next_op(3, SimTime::ZERO),
            GuestOp::Compute { .. }
        ));
        assert_eq!(srv.backlog(), 0);
        match srv.next_op(3, SimTime::ZERO) {
            GuestOp::NetSend { flow, .. } => assert_eq!(flow, 2),
            other => panic!("expected NetSend, got {other:?}"),
        }
        match srv.next_op(0, SimTime::ZERO) {
            GuestOp::NetSend { flow, .. } => assert_eq!(flow, 1),
            other => panic!("expected NetSend, got {other:?}"),
        }
        assert_eq!(srv.served(), 2);
    }

    #[test]
    fn stats_report_served_and_backlog() {
        let mut srv = ServiceGuest::echo(0);
        srv.on_irq(0, rx(1, 64), SimTime::ZERO);
        let s = srv.stats();
        assert_eq!(s.counters.get("service.backlog"), 1);
        assert_eq!(s.counters.get("service.served"), 0);
    }
}
