//! CoreMark-PRO: the CPU-intensive workload of figs. 6/7 and table 4.
//!
//! Modelled as a fixed-size work unit repeated on every vCPU. The real
//! benchmark reports a score proportional to iterations per second; the
//! experiment harness computes the same from
//! [`CoremarkPro::iterations`].

use cg_sim::{SimDuration, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// The CoreMark-PRO application model.
#[derive(Debug)]
pub struct CoremarkPro {
    iterations: Vec<u64>,
    /// Ideal compute time per work unit.
    unit: SimDuration,
}

impl CoremarkPro {
    /// Creates the workload for `num_vcpus` workers with the given work
    /// unit (100 µs is a good fidelity/speed trade-off: fine enough that
    /// tick interference is visible, coarse enough to keep event counts
    /// low).
    pub fn new(num_vcpus: u32, unit: SimDuration) -> CoremarkPro {
        CoremarkPro {
            iterations: vec![0; num_vcpus as usize],
            unit,
        }
    }

    /// Completed iterations per vCPU.
    pub fn iterations(&self) -> &[u64] {
        &self.iterations
    }

    /// Total completed iterations.
    pub fn total_iterations(&self) -> u64 {
        self.iterations.iter().sum()
    }

    /// The per-iteration ideal work.
    pub fn unit(&self) -> SimDuration {
        self.unit
    }

    /// The benchmark score for a run of `elapsed`: work-unit completions
    /// per second (the paper's score is an arbitrary linear scale; shapes
    /// are what matter).
    pub fn score(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total_iterations() as f64 / elapsed.as_secs_f64()
    }
}

impl AppLogic for CoremarkPro {
    fn next_op(&mut self, vcpu: u32, _now: SimTime) -> GuestOp {
        // `next_op` is called again only after the previous unit fully
        // completed, so counting here counts *completed* units (the first
        // call over-counts by one; corrected in `stats`).
        self.iterations[vcpu as usize] += 1;
        GuestOp::Compute { work: self.unit }
    }

    fn on_irq(&mut self, _vcpu: u32, _irq: GuestIrq, _now: SimTime) {}

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        for (i, &iters) in self.iterations.iter().enumerate() {
            stats.counters.add(
                &format!("coremark.vcpu{i}.iterations"),
                iters.saturating_sub(1),
            );
        }
        stats
            .counters
            .add("coremark.total_iterations", self.adjusted_total());
        stats
    }
}

impl CoremarkPro {
    fn adjusted_total(&self) -> u64 {
        self.iterations.iter().map(|&i| i.saturating_sub(1)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_compute_units_and_counts() {
        let mut cm = CoremarkPro::new(2, SimDuration::micros(100));
        for _ in 0..5 {
            assert!(matches!(
                cm.next_op(0, SimTime::ZERO),
                GuestOp::Compute { work } if work == SimDuration::micros(100)
            ));
        }
        cm.next_op(1, SimTime::ZERO);
        assert_eq!(cm.iterations(), &[5, 1]);
        assert_eq!(cm.total_iterations(), 6);
    }

    #[test]
    fn stats_subtract_in_flight_unit() {
        let mut cm = CoremarkPro::new(1, SimDuration::micros(100));
        for _ in 0..5 {
            cm.next_op(0, SimTime::ZERO);
        }
        // 5 calls = 4 completed + 1 in flight.
        assert_eq!(cm.stats().counters.get("coremark.total_iterations"), 4);
    }

    #[test]
    fn score_is_iterations_per_second() {
        let mut cm = CoremarkPro::new(1, SimDuration::micros(100));
        for _ in 0..1000 {
            cm.next_op(0, SimTime::ZERO);
        }
        let score = cm.score(SimDuration::secs(2));
        assert!((score - 500.0).abs() < 1e-9);
        assert_eq!(cm.score(SimDuration::ZERO), 0.0);
    }
}
