//! NetPIPE: the ping-pong network benchmark of fig. 8.
//!
//! A single-vCPU guest exchanges messages of increasing size with a
//! remote [`crate::peer::EchoPeer`], measuring the round-trip time per
//! size. Throughput at size `s` is `2s / rtt` (one message each way per
//! round trip).

use std::collections::BTreeMap;

use cg_sim::{Samples, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// State of the current ping-pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Touch the outgoing buffer (copy/checksum work).
    Prep,
    /// Ready to send the next message.
    Send,
    /// Waiting for the echo.
    Wait,
    /// Touch the received buffer.
    Consume,
    /// All sizes done.
    Done,
}

/// The NetPIPE application model (vCPU 0 only).
#[derive(Debug)]
pub struct Netpipe {
    /// Message sizes to sweep.
    sizes: Vec<u64>,
    /// Repetitions per size.
    reps: u32,
    device: u32,
    size_idx: usize,
    rep: u32,
    phase: Phase,
    sent_at: SimTime,
    seq: u64,
    /// Guest-side per-byte buffer work in nanoseconds (memcpy +
    /// checksum; the compute that makes large messages CPU-intensive,
    /// §5.3).
    touch_ns_per_byte: f64,
    /// RTT samples (µs) per size.
    rtts: BTreeMap<u64, Samples>,
}

impl Netpipe {
    /// Creates the benchmark sweeping `sizes` with `reps` round trips
    /// each, on guest device `device`.
    pub fn new(sizes: Vec<u64>, reps: u32, device: u32) -> Netpipe {
        assert!(!sizes.is_empty() && reps > 0, "empty NetPIPE sweep");
        Netpipe {
            sizes,
            reps,
            device,
            size_idx: 0,
            rep: 0,
            phase: Phase::Prep,
            sent_at: SimTime::ZERO,
            seq: 0,
            touch_ns_per_byte: 0.15,
            rtts: BTreeMap::new(),
        }
    }

    /// Sets the guest-side per-byte buffer cost (ns/byte).
    pub fn with_touch_cost(mut self, ns_per_byte: f64) -> Netpipe {
        self.touch_ns_per_byte = ns_per_byte;
        self
    }

    /// The default sweep: 64 B to 1 MiB, powers of four.
    pub fn standard(device: u32, reps: u32) -> Netpipe {
        Netpipe::new(
            vec![64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20],
            reps,
            device,
        )
    }

    /// Returns `true` once all sizes completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// RTT samples per message size (µs).
    pub fn rtts(&self) -> &BTreeMap<u64, Samples> {
        &self.rtts
    }

    /// Mean throughput at `size` in megabits per second, from the
    /// recorded RTTs.
    pub fn throughput_mbps(&mut self, size: u64) -> Option<f64> {
        let samples = self.rtts.get_mut(&size)?;
        if samples.is_empty() {
            return None;
        }
        // Median RTT; 2 transfers of `size` per round trip. Bits per
        // microsecond happens to equal megabits per second.
        let rtt_us = samples.percentile(50.0);
        Some((2.0 * size as f64 * 8.0) / rtt_us)
    }

    fn current_size(&self) -> u64 {
        self.sizes[self.size_idx]
    }
}

impl AppLogic for Netpipe {
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi; // helper vCPUs idle
        }
        match self.phase {
            Phase::Prep => {
                self.phase = Phase::Send;
                // RTT measurement starts before buffer preparation, as
                // in NetPIPE itself.
                self.sent_at = now;
                GuestOp::Compute {
                    work: cg_sim::SimDuration::from_nanos_f64(
                        self.current_size() as f64 * self.touch_ns_per_byte,
                    ),
                }
            }
            Phase::Send => {
                self.phase = Phase::Wait;
                self.seq += 1;
                GuestOp::NetSend {
                    device: self.device,
                    bytes: self.current_size(),
                    flow: self.seq,
                }
            }
            Phase::Wait => GuestOp::Wfi,
            Phase::Consume => {
                self.phase = Phase::Prep;
                GuestOp::Compute {
                    work: cg_sim::SimDuration::from_nanos_f64(
                        self.current_size() as f64 * self.touch_ns_per_byte,
                    ),
                }
            }
            Phase::Done => GuestOp::Shutdown,
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::NetRx { flow, .. } = irq {
            if self.phase == Phase::Wait && flow == self.seq {
                let rtt = now.duration_since(self.sent_at).as_micros_f64();
                let size = self.current_size();
                self.rtts.entry(size).or_default().record(rtt);
                self.rep += 1;
                if self.rep >= self.reps {
                    self.rep = 0;
                    self.size_idx += 1;
                }
                self.phase = if self.size_idx >= self.sizes.len() {
                    Phase::Done
                } else {
                    Phase::Consume
                };
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        for (size, samples) in &self.rtts {
            stats
                .samples
                .insert(format!("rtt_us_{size}"), samples.clone());
        }
        stats.counters.add("netpipe.round_trips", self.seq);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimDuration;

    fn rx(flow: u64) -> GuestIrq {
        GuestIrq::NetRx {
            device: 0,
            bytes: 64,
            flow,
        }
    }

    /// Advances through the Prep compute and returns the send op.
    fn prep_then_send(np: &mut Netpipe, t: SimTime) -> GuestOp {
        assert!(matches!(np.next_op(0, t), GuestOp::Compute { .. }));
        np.next_op(0, t)
    }

    #[test]
    fn ping_pong_sequence() {
        let mut np = Netpipe::new(vec![64, 256], 2, 0);
        let t0 = SimTime::ZERO;
        // First: prep compute, then the send.
        match prep_then_send(&mut np, t0) {
            GuestOp::NetSend { bytes, flow, .. } => {
                assert_eq!(bytes, 64);
                assert_eq!(flow, 1);
            }
            other => panic!("expected NetSend, got {other:?}"),
        }
        // While waiting: WFI.
        assert!(matches!(np.next_op(0, t0), GuestOp::Wfi));
        // Echo arrives 100 µs later; the consume compute follows.
        np.on_irq(0, rx(1), t0 + SimDuration::micros(100));
        assert!(!np.is_done());
        assert!(matches!(np.next_op(0, t0), GuestOp::Compute { .. })); // consume
                                                                       // rep 2 of size 64.
        assert!(matches!(
            prep_then_send(&mut np, t0),
            GuestOp::NetSend { bytes: 64, .. }
        ));
        np.on_irq(0, rx(2), t0 + SimDuration::micros(250));
        np.next_op(0, t0); // consume
                           // Now size 256.
        assert!(matches!(
            prep_then_send(&mut np, t0),
            GuestOp::NetSend { bytes: 256, .. }
        ));
        np.on_irq(0, rx(3), t0 + SimDuration::micros(400));
        np.next_op(0, t0); // consume
        assert!(matches!(
            prep_then_send(&mut np, t0),
            GuestOp::NetSend { bytes: 256, .. }
        ));
        np.on_irq(0, rx(4), t0 + SimDuration::micros(600));
        assert!(np.is_done());
        assert!(matches!(np.next_op(0, t0), GuestOp::Shutdown));
    }

    #[test]
    fn rtt_recorded_per_size() {
        let mut np = Netpipe::new(vec![64], 1, 0);
        let t0 = SimTime::ZERO;
        prep_then_send(&mut np, t0);
        np.on_irq(0, rx(1), t0 + SimDuration::micros(42));
        let rtts = np.rtts();
        assert_eq!(rtts[&64].len(), 1);
        let stats = np.stats();
        assert!((stats.sample("rtt_us_64").unwrap().mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn stale_or_wrong_flow_ignored() {
        let mut np = Netpipe::new(vec![64], 1, 0);
        np.next_op(0, SimTime::ZERO);
        np.on_irq(0, rx(99), SimTime::ZERO + SimDuration::micros(5));
        assert!(!np.is_done());
        assert!(np.rtts().is_empty());
    }

    #[test]
    fn helper_vcpus_idle() {
        let mut np = Netpipe::new(vec![64], 1, 0);
        assert!(matches!(np.next_op(1, SimTime::ZERO), GuestOp::Wfi));
    }
}
