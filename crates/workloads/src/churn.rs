//! Deterministic multi-tenant churn schedules: seeded arrivals,
//! departures, and resizes over a population of elastic tenants.
//!
//! A core-gapped node lives or dies by how it reallocates dedicated
//! cores as tenants come and go; this module generates the *demand*
//! side of that story. A [`ChurnSchedule`] is a time-sorted list of
//! [`ChurnEvent`]s drawn entirely from one seeded RNG stream, so two
//! runs with the same seed replay the identical tenant behaviour —
//! making the system side's fingerprint comparison meaningful.

use cg_sim::{SimDuration, SimRng};

/// What one tenant asks of the node at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The tenant requests admission with `vcpus` dedicated cores.
    Arrive {
        /// Requested vCPU (= dedicated core) count.
        vcpus: u32,
    },
    /// The tenant asks to be resized to `vcpus` active cores.
    Resize {
        /// New target vCPU count.
        vcpus: u32,
    },
    /// The tenant departs (shutdown + teardown).
    Depart,
}

/// One scheduled tenant action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Offset from the start of the run.
    pub at: SimDuration,
    /// Tenant index (stable across the tenant's whole lifetime).
    pub tenant: u32,
    /// The requested action.
    pub action: ChurnAction,
}

/// A seeded arrival/departure/resize schedule over `tenants` tenants.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    /// Events sorted by time (ties broken by tenant index, arrivals
    /// before resizes before departures).
    pub events: Vec<ChurnEvent>,
    /// The horizon the schedule was generated for.
    pub horizon: SimDuration,
}

impl ChurnSchedule {
    /// Generates a schedule: each tenant arrives at a uniform point in
    /// the first 60% of `horizon` asking for 1–4 vCPUs, performs 0–3
    /// resizes (never beyond its admitted maximum, to match the live
    /// system's REC ceiling), and with 70% probability departs before
    /// the horizon. `tenants` is clamped to the paper range [16, 64].
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn generate(seed: u64, tenants: u32, horizon: SimDuration) -> ChurnSchedule {
        assert!(!horizon.is_zero(), "churn horizon must be non-zero");
        let tenants = tenants.clamp(16, 64);
        let mut rng = SimRng::seed(seed ^ 0xC4u64.rotate_left(56));
        let mut events = Vec::new();
        let h = horizon.as_nanos();
        for tenant in 0..tenants {
            let arrive_ns: u64 = rng.range(0..h * 3 / 5);
            let max_vcpus: u32 = rng.range(1..=4);
            events.push(ChurnEvent {
                at: SimDuration::nanos(arrive_ns),
                tenant,
                action: ChurnAction::Arrive { vcpus: max_vcpus },
            });
            let departs = rng.chance(0.7);
            let depart_ns = if departs {
                rng.range(arrive_ns + h / 20..=h)
            } else {
                h
            };
            let resizes: u32 = rng.range(0..=3);
            let mut size = max_vcpus;
            for _ in 0..resizes {
                if depart_ns <= arrive_ns + 2 {
                    break;
                }
                let at_ns: u64 = rng.range(arrive_ns + 1..depart_ns);
                // Pick a different size within [1, max]; admission
                // fixed the REC count, so growth past it is invalid.
                let mut to: u32 = rng.range(1..=max_vcpus);
                if to == size {
                    to = if size == max_vcpus {
                        1.max(size - 1)
                    } else {
                        size + 1
                    };
                }
                if to == size {
                    continue; // max_vcpus == 1: nothing to resize
                }
                size = to;
                events.push(ChurnEvent {
                    at: SimDuration::nanos(at_ns),
                    tenant,
                    action: ChurnAction::Resize { vcpus: to },
                });
            }
            if departs && depart_ns < h {
                events.push(ChurnEvent {
                    at: SimDuration::nanos(depart_ns),
                    tenant,
                    action: ChurnAction::Depart,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.tenant, action_rank(e.action)));
        ChurnSchedule { events, horizon }
    }

    /// Number of arrival events in the schedule.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, ChurnAction::Arrive { .. }))
            .count()
    }
}

fn action_rank(a: ChurnAction) -> u8 {
    match a {
        ChurnAction::Arrive { .. } => 0,
        ChurnAction::Resize { .. } => 1,
        ChurnAction::Depart => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChurnSchedule::generate(7, 32, SimDuration::millis(100));
        let b = ChurnSchedule::generate(7, 32, SimDuration::millis(100));
        assert_eq!(a.events, b.events);
        assert_ne!(
            a.events,
            ChurnSchedule::generate(8, 32, SimDuration::millis(100)).events
        );
    }

    #[test]
    fn schedule_is_well_formed() {
        let s = ChurnSchedule::generate(11, 48, SimDuration::millis(50));
        assert_eq!(s.arrivals(), 48);
        // Sorted by time.
        assert!(s.events.windows(2).all(|w| w[0].at <= w[1].at));
        for t in 0..48u32 {
            let evs: Vec<_> = s.events.iter().filter(|e| e.tenant == t).collect();
            // Lifecycle order: arrive first, depart (if any) last.
            assert!(matches!(evs[0].action, ChurnAction::Arrive { .. }));
            let max = match evs[0].action {
                ChurnAction::Arrive { vcpus } => vcpus,
                _ => unreachable!(),
            };
            assert!((1..=4).contains(&max));
            for e in &evs[1..] {
                match e.action {
                    ChurnAction::Arrive { .. } => panic!("double arrival"),
                    ChurnAction::Resize { vcpus } => {
                        assert!((1..=max).contains(&vcpus), "resize within admitted max")
                    }
                    ChurnAction::Depart => assert!(
                        std::ptr::eq(*e, *evs.last().unwrap()),
                        "depart must be the tenant's last event"
                    ),
                }
            }
        }
    }

    #[test]
    fn tenant_count_is_clamped_to_paper_range() {
        let lo = ChurnSchedule::generate(3, 2, SimDuration::millis(10));
        let hi = ChurnSchedule::generate(3, 1000, SimDuration::millis(10));
        assert_eq!(lo.arrivals(), 16);
        assert_eq!(hi.arrivals(), 64);
    }
}
