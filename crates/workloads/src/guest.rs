//! The guest-program interface: operations, interrupts, statistics.

use std::collections::BTreeMap;
use std::fmt;

use cg_machine::SecretId;
use cg_sim::{Counters, Samples, SimDuration, SimTime};

/// An architectural operation a guest vCPU performs next.
///
/// The system layer interprets each op: `Compute` runs on the core
/// through the warmth model (and may be interrupted), timer/IPI ops trap
/// to the RMM, I/O ops go through the device model (virtio kicks exit to
/// the host; SR-IOV sends are exit-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestOp {
    /// Application/kernel compute: `work` of ideal (fully warm) time.
    Compute {
        /// Ideal compute time.
        work: SimDuration,
    },
    /// Secret-dependent compute (used by attack-scenario victims): same
    /// semantics, but footprints carry the secret taint.
    SecretCompute {
        /// Ideal compute time.
        work: SimDuration,
        /// The secret involved.
        secret: SecretId,
    },
    /// Program the virtual timer (the guest tick).
    ProgramTick {
        /// Absolute expiry time.
        deadline: SimTime,
    },
    /// Send an SGI to another vCPU of the same VM.
    SendIpi {
        /// Target vCPU index.
        target: u32,
        /// SGI number (0–15).
        sgi: u32,
    },
    /// Wait for interrupt.
    Wfi,
    /// Queue a network transmit on device `device` (guest-relative
    /// device index). Virtio devices kick (exit); SR-IOV does not.
    NetSend {
        /// Guest device index.
        device: u32,
        /// Bytes on the wire.
        bytes: u64,
        /// Flow tag for matching request/response.
        flow: u64,
    },
    /// Submit a disk read of `bytes` (virtio-blk).
    DiskRead {
        /// Guest device index.
        device: u32,
        /// Transfer size.
        bytes: u64,
        /// Completion tag.
        tag: u64,
    },
    /// Submit a disk write of `bytes` (virtio-blk).
    DiskWrite {
        /// Guest device index.
        device: u32,
        /// Transfer size.
        bytes: u64,
        /// Completion tag.
        tag: u64,
    },
    /// A console/diagnostic MMIO write — the background exit source.
    ConsoleWrite,
    /// Probe the core's microarchitectural structures (and the shared
    /// LLC) for foreign footprints — the attacker primitive
    /// (prime+probe / MDS-style sampling collapsed to its effect).
    Probe,
    /// Touch an unmapped shared (unprotected) page, causing a stage-2
    /// fault the host must resolve (e.g. growing a virtio ring or a
    /// ballooned region).
    TouchShared {
        /// The faulting guest-physical address.
        ipa: u64,
    },
    /// Write a protected data page in place (no exit, no fault): the
    /// op dirty-tracking sees. Workloads use it to model a write-heavy
    /// working set during live migration.
    DirtyWrite {
        /// The guest-physical address written.
        ipa: u64,
    },
    /// Publish a message into an attested inter-CVM channel's ring and
    /// (unless the peer suppressed notifications) ring the channel
    /// doorbell SGI straight to the peer realm's core — no host exit.
    IvcSend {
        /// Channel identifier (as paired at build time).
        channel: u32,
        /// Payload size.
        bytes: u64,
        /// Producer-assigned sequence number.
        seq: u64,
    },
    /// Power off this vCPU.
    Shutdown,
}

/// A virtual interrupt (or completion) delivered to the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestIrq {
    /// The timer tick fired.
    Tick,
    /// An SGI from another vCPU.
    Ipi {
        /// SGI number.
        sgi: u32,
    },
    /// A network packet arrived.
    NetRx {
        /// Guest device index.
        device: u32,
        /// Payload size.
        bytes: u64,
        /// Flow tag.
        flow: u64,
    },
    /// A disk request completed.
    DiskDone {
        /// Guest device index.
        device: u32,
        /// The request's tag.
        tag: u64,
    },
    /// A message drained from an attested inter-CVM channel's ring
    /// (after the channel doorbell or a watchdog rescan).
    IvcRecv {
        /// Channel identifier.
        channel: u32,
        /// Payload size.
        bytes: u64,
        /// Producer-assigned sequence number.
        seq: u64,
    },
}

/// Statistics a workload exposes at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    /// Named counters (iterations completed, requests served, …).
    pub counters: Counters,
    /// Named sample sets (latencies in microseconds, …).
    pub samples: BTreeMap<String, Samples>,
}

impl WorkloadStats {
    /// Creates empty statistics.
    pub fn new() -> WorkloadStats {
        WorkloadStats::default()
    }

    /// Records a sample under `name`.
    pub fn record_sample(&mut self, name: &str, value: f64) {
        self.samples
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// The sample set `name`, if recorded.
    pub fn sample(&self, name: &str) -> Option<&Samples> {
        self.samples.get(name)
    }
}

/// A complete guest: the state machine the system layer drives.
///
/// Contract: `next_op` is called whenever vCPU `vcpu` is able to make
/// progress — after entry, and after the previous op fully completed.
/// Interrupts arrive via `on_irq` at op boundaries (in-flight compute is
/// transparently resumed by the driver). A vCPU that returned
/// [`GuestOp::Wfi`] gets its next `next_op` call after the next
/// interrupt.
pub trait GuestProgram: fmt::Debug {
    /// The next operation for `vcpu`.
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp;

    /// A virtual interrupt was delivered to `vcpu`.
    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime);

    /// Final workload statistics.
    fn stats(&self) -> WorkloadStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = WorkloadStats::new();
        s.counters.add("iters", 5);
        s.record_sample("latency_us", 1.5);
        s.record_sample("latency_us", 2.5);
        assert_eq!(s.counters.get("iters"), 5);
        assert_eq!(s.sample("latency_us").unwrap().len(), 2);
        assert!(s.sample("missing").is_none());
    }
}
