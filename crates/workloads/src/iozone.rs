//! IOzone: synchronous block I/O of fig. 9.
//!
//! A single-vCPU guest issues O_DIRECT-style synchronous reads and
//! writes of a given record size to a virtio block device: each request
//! is submitted, the vCPU waits for completion, and the next request
//! follows immediately. Throughput is `record size / mean completion
//! time`.

use std::collections::BTreeMap;

use cg_sim::{Samples, SimTime};

use crate::guest::{GuestIrq, GuestOp, WorkloadStats};
use crate::kernel::AppLogic;

/// One sweep entry: `(record_bytes, is_write, count)`.
pub type IozonePhase = (u64, bool, u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Submit,
    Wait,
    Done,
}

/// The IOzone application model (vCPU 0 only).
#[derive(Debug)]
pub struct Iozone {
    phases: Vec<IozonePhase>,
    device: u32,
    phase_idx: usize,
    issued_in_phase: u32,
    state: Phase,
    submitted_at: SimTime,
    next_tag: u64,
    /// Per-request completion time samples (µs), keyed by
    /// `(record, is_write)`.
    completions: BTreeMap<(u64, bool), Samples>,
}

impl Iozone {
    /// Creates the benchmark over the given phases on guest device
    /// `device`.
    pub fn new(phases: Vec<IozonePhase>, device: u32) -> Iozone {
        assert!(!phases.is_empty(), "empty IOzone sweep");
        Iozone {
            phases,
            device,
            phase_idx: 0,
            issued_in_phase: 0,
            state: Phase::Submit,
            submitted_at: SimTime::ZERO,
            next_tag: 0,
            completions: BTreeMap::new(),
        }
    }

    /// A standard sweep: reads then writes for each record size.
    pub fn standard(device: u32, reps: u32) -> Iozone {
        let sizes = [
            4096u64,
            16384,
            65536,
            262144,
            1 << 20,
            4 << 20,
            16 << 20,
            64 << 20,
        ];
        let mut phases = Vec::new();
        for &s in &sizes {
            phases.push((s, false, reps));
            phases.push((s, true, reps));
        }
        Iozone::new(phases, device)
    }

    /// Returns `true` once every phase completed.
    pub fn is_done(&self) -> bool {
        self.state == Phase::Done
    }

    /// Completion-time samples per `(record, is_write)`.
    pub fn completions(&self) -> &BTreeMap<(u64, bool), Samples> {
        &self.completions
    }

    /// Mean throughput in MiB/s for `(record, is_write)`.
    pub fn throughput_mibs(&self, record: u64, is_write: bool) -> Option<f64> {
        let s = self.completions.get(&(record, is_write))?;
        if s.is_empty() {
            return None;
        }
        let mean_us = s.mean();
        Some(record as f64 / (1 << 20) as f64 / (mean_us / 1e6))
    }
}

impl AppLogic for Iozone {
    fn next_op(&mut self, vcpu: u32, now: SimTime) -> GuestOp {
        if vcpu != 0 {
            return GuestOp::Wfi;
        }
        match self.state {
            Phase::Submit => {
                let (bytes, is_write, _) = self.phases[self.phase_idx];
                self.state = Phase::Wait;
                self.submitted_at = now;
                self.next_tag += 1;
                if is_write {
                    GuestOp::DiskWrite {
                        device: self.device,
                        bytes,
                        tag: self.next_tag,
                    }
                } else {
                    GuestOp::DiskRead {
                        device: self.device,
                        bytes,
                        tag: self.next_tag,
                    }
                }
            }
            Phase::Wait => GuestOp::Wfi,
            Phase::Done => GuestOp::Shutdown,
        }
    }

    fn on_irq(&mut self, vcpu: u32, irq: GuestIrq, now: SimTime) {
        if vcpu != 0 {
            return;
        }
        if let GuestIrq::DiskDone { tag, .. } = irq {
            if self.state == Phase::Wait && tag == self.next_tag {
                let (bytes, is_write, count) = self.phases[self.phase_idx];
                self.completions
                    .entry((bytes, is_write))
                    .or_default()
                    .record(now.duration_since(self.submitted_at).as_micros_f64());
                self.issued_in_phase += 1;
                if self.issued_in_phase >= count {
                    self.issued_in_phase = 0;
                    self.phase_idx += 1;
                }
                self.state = if self.phase_idx >= self.phases.len() {
                    Phase::Done
                } else {
                    Phase::Submit
                };
            }
        }
    }

    fn stats(&self) -> WorkloadStats {
        let mut stats = WorkloadStats::new();
        for ((bytes, is_write), samples) in &self.completions {
            let dir = if *is_write { "write" } else { "read" };
            stats
                .samples
                .insert(format!("io_us_{dir}_{bytes}"), samples.clone());
        }
        stats.counters.add("iozone.requests", self.next_tag);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimDuration;

    fn done(tag: u64) -> GuestIrq {
        GuestIrq::DiskDone { device: 0, tag }
    }

    #[test]
    fn sync_io_sequence() {
        let mut io = Iozone::new(vec![(4096, false, 2), (4096, true, 1)], 0);
        let t0 = SimTime::ZERO;
        assert!(matches!(
            io.next_op(0, t0),
            GuestOp::DiskRead {
                bytes: 4096,
                tag: 1,
                ..
            }
        ));
        assert!(matches!(io.next_op(0, t0), GuestOp::Wfi));
        io.on_irq(0, done(1), t0 + SimDuration::micros(80));
        assert!(matches!(
            io.next_op(0, t0),
            GuestOp::DiskRead { tag: 2, .. }
        ));
        io.on_irq(0, done(2), t0 + SimDuration::micros(160));
        // Write phase.
        assert!(matches!(
            io.next_op(0, t0),
            GuestOp::DiskWrite { tag: 3, .. }
        ));
        io.on_irq(0, done(3), t0 + SimDuration::micros(240));
        assert!(io.is_done());
        assert!(matches!(io.next_op(0, t0), GuestOp::Shutdown));
    }

    #[test]
    fn throughput_from_completions() {
        let mut io = Iozone::new(vec![(1 << 20, false, 1)], 0);
        io.next_op(0, SimTime::ZERO);
        // 1 MiB in 1000 µs = 1000 MiB/s.
        io.on_irq(0, done(1), SimTime::ZERO + SimDuration::micros(1000));
        let tput = io.throughput_mibs(1 << 20, false).unwrap();
        assert!((tput - 1000.0).abs() < 1e-6);
        assert_eq!(io.throughput_mibs(1 << 20, true), None);
    }

    #[test]
    fn stale_completion_ignored() {
        let mut io = Iozone::new(vec![(4096, false, 1)], 0);
        io.next_op(0, SimTime::ZERO);
        io.on_irq(0, done(42), SimTime::ZERO);
        assert!(!io.is_done());
    }

    #[test]
    fn stats_name_directions() {
        let mut io = Iozone::new(vec![(4096, true, 1)], 0);
        io.next_op(0, SimTime::ZERO);
        io.on_irq(0, done(1), SimTime::ZERO + SimDuration::micros(10));
        let stats = io.stats();
        assert!(stats.sample("io_us_write_4096").is_some());
        assert_eq!(stats.counters.get("iozone.requests"), 1);
    }
}
