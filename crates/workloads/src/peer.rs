//! Network peers: the machine on the other end of the wire.
//!
//! The paper's network benchmarks involve a second, unmodified server
//! (§5.1). Peers are event-driven models living outside the simulated
//! machine: they receive packets after the wire latency and reply after a
//! think/service time.

use std::collections::BTreeMap;
use std::fmt;

use cg_sim::{Samples, SimDuration, SimTime};

/// A packet as the peer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerPacket {
    /// On-wire size in bytes.
    pub bytes: u64,
    /// Flow tag (matches [`crate::guest::GuestOp::NetSend`]).
    pub flow: u64,
}

/// A network peer: receives guest packets, emits reply packets.
pub trait NetPeer: fmt::Debug {
    /// A packet from the guest arrived at `now`. Returns packets to send
    /// back, each with a delay relative to `now` (service time).
    fn on_packet(&mut self, pkt: PeerPacket, now: SimTime) -> Vec<(SimDuration, PeerPacket)>;

    /// Packets the peer spontaneously sends at simulation start (e.g. a
    /// client pool's first requests). Returns `(time, packet)` pairs.
    fn initial_packets(&mut self) -> Vec<(SimTime, PeerPacket)>;

    /// Latency samples collected by the peer (microseconds), keyed by
    /// series name.
    fn latency_samples(&self) -> BTreeMap<String, Samples>;

    /// Returns `true` once the peer has finished its load (closed-loop
    /// client pools); open-ended peers return `false` forever.
    fn is_done(&self) -> bool {
        false
    }

    /// Requests completed by the peer, if it counts them.
    fn completed(&self) -> u64 {
        0
    }
}

/// The NetPIPE peer: echoes every packet back after a fixed processing
/// time (the remote NetPIPE process).
#[derive(Debug)]
pub struct EchoPeer {
    service: SimDuration,
    echoed: u64,
}

impl EchoPeer {
    /// Creates an echo peer with the given per-packet service time.
    pub fn new(service: SimDuration) -> EchoPeer {
        EchoPeer { service, echoed: 0 }
    }

    /// Packets echoed so far.
    pub fn echoed(&self) -> u64 {
        self.echoed
    }
}

impl NetPeer for EchoPeer {
    fn on_packet(&mut self, pkt: PeerPacket, _now: SimTime) -> Vec<(SimDuration, PeerPacket)> {
        self.echoed += 1;
        vec![(self.service, pkt)]
    }

    fn initial_packets(&mut self) -> Vec<(SimTime, PeerPacket)> {
        Vec::new()
    }

    fn latency_samples(&self) -> BTreeMap<String, Samples> {
        BTreeMap::new()
    }
}

/// One closed-loop Redis client.
#[derive(Debug, Clone, Copy)]
struct Client {
    /// When the outstanding request was sent (None = idle).
    sent_at: Option<SimTime>,
}

/// The redis-benchmark client pool: `n` closed-loop clients issuing one
/// command type, measuring per-request latency (table 5: 50 clients,
/// 512-byte objects).
#[derive(Debug)]
pub struct RedisClientPool {
    clients: Vec<Client>,
    request_bytes: u64,
    /// Completed requests.
    completed: u64,
    /// Latency samples in microseconds.
    latencies: Samples,
    /// Stop issuing new requests after this many completions.
    target: u64,
}

impl RedisClientPool {
    /// Creates `n` clients sending requests of `request_bytes`, stopping
    /// after `target` total completions.
    pub fn new(n: u32, request_bytes: u64, target: u64) -> RedisClientPool {
        RedisClientPool {
            clients: vec![Client { sent_at: None }; n as usize],
            request_bytes,
            completed: 0,
            latencies: Samples::new(),
            target,
        }
    }

    /// Completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Returns `true` once the target completions are reached.
    pub fn is_done(&self) -> bool {
        self.completed >= self.target
    }

    /// Throughput in requests/second over `elapsed`.
    pub fn throughput(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / elapsed.as_secs_f64()
        }
    }

    fn request(&self, client: usize) -> PeerPacket {
        PeerPacket {
            bytes: self.request_bytes,
            flow: client as u64,
        }
    }
}

impl NetPeer for RedisClientPool {
    fn on_packet(&mut self, pkt: PeerPacket, now: SimTime) -> Vec<(SimDuration, PeerPacket)> {
        // A response for client `flow`.
        let idx = pkt.flow as usize;
        if idx >= self.clients.len() {
            return Vec::new();
        }
        if let Some(sent) = self.clients[idx].sent_at.take() {
            self.completed += 1;
            self.latencies
                .record(now.duration_since(sent).as_micros_f64());
        }
        if self.completed + self.outstanding() < self.target {
            self.clients[idx].sent_at = Some(now);
            vec![(SimDuration::ZERO, self.request(idx))]
        } else {
            Vec::new()
        }
    }

    fn initial_packets(&mut self) -> Vec<(SimTime, PeerPacket)> {
        let mut out = Vec::new();
        for i in 0..self.clients.len() {
            self.clients[i].sent_at = Some(SimTime::ZERO);
            out.push((SimTime::ZERO, self.request(i)));
        }
        out
    }

    fn latency_samples(&self) -> BTreeMap<String, Samples> {
        let mut m = BTreeMap::new();
        m.insert("request_us".to_owned(), self.latencies.clone());
        m
    }

    fn is_done(&self) -> bool {
        self.completed >= self.target
    }

    fn completed(&self) -> u64 {
        self.completed
    }
}

impl RedisClientPool {
    fn outstanding(&self) -> u64 {
        self.clients.iter().filter(|c| c.sent_at.is_some()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_peer_bounces_packets() {
        let mut p = EchoPeer::new(SimDuration::micros(2));
        let replies = p.on_packet(
            PeerPacket {
                bytes: 100,
                flow: 1,
            },
            SimTime::ZERO,
        );
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, SimDuration::micros(2));
        assert_eq!(replies[0].1.bytes, 100);
        assert_eq!(p.echoed(), 1);
        assert!(p.initial_packets().is_empty());
    }

    #[test]
    fn client_pool_issues_initial_burst() {
        let mut pool = RedisClientPool::new(50, 512, 1000);
        let initial = pool.initial_packets();
        assert_eq!(initial.len(), 50);
        assert!(initial.iter().all(|(t, _)| *t == SimTime::ZERO));
    }

    #[test]
    fn closed_loop_reissues_after_response() {
        let mut pool = RedisClientPool::new(2, 512, 10);
        pool.initial_packets();
        let t1 = SimTime::from_nanos(500_000);
        let next = pool.on_packet(
            PeerPacket {
                bytes: 512,
                flow: 0,
            },
            t1,
        );
        assert_eq!(next.len(), 1);
        assert_eq!(pool.completed(), 1);
        let samples = pool.latency_samples();
        assert_eq!(samples["request_us"].len(), 1);
        assert!((samples["request_us"].mean() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn pool_stops_at_target() {
        let mut pool = RedisClientPool::new(1, 512, 2);
        pool.initial_packets();
        let mut t = SimTime::ZERO;
        for _ in 0..2 {
            t += SimDuration::micros(100);
            pool.on_packet(
                PeerPacket {
                    bytes: 512,
                    flow: 0,
                },
                t,
            );
        }
        assert!(pool.is_done());
        let next = pool.on_packet(
            PeerPacket {
                bytes: 512,
                flow: 0,
            },
            t,
        );
        assert!(next.is_empty());
    }

    #[test]
    fn unknown_flow_is_ignored() {
        let mut pool = RedisClientPool::new(1, 512, 10);
        pool.initial_packets();
        assert!(pool
            .on_packet(
                PeerPacket {
                    bytes: 512,
                    flow: 99
                },
                SimTime::ZERO
            )
            .is_empty());
        assert_eq!(pool.completed(), 0);
    }

    #[test]
    fn throughput_computation() {
        let mut pool = RedisClientPool::new(1, 512, 100);
        pool.initial_packets();
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            t += SimDuration::millis(1);
            pool.on_packet(
                PeerPacket {
                    bytes: 512,
                    flow: 0,
                },
                t,
            );
        }
        let tput = pool.throughput(SimDuration::secs(1));
        assert!((tput - 50.0).abs() < 1e-9);
    }
}
