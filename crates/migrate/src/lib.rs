//! # cg-migrate — live-migration policy for core-gapped CVMs
//!
//! The policy half of attested live migration: a seeded inter-node link
//! model and the pre-copy round-planning logic `Cluster::migrate_vm`
//! (in `cg-core`) drives. Mechanism lives elsewhere — dirty-granule
//! tracking and the sealed `MIGRATION_EXPORT` / `MIGRATION_IMPORT`
//! blobs are in `cg-rmm`, the quiesce/resume machinery in `cg-core` —
//! so this crate stays dependency-light and unit-testable.
//!
//! ## The protocol in one paragraph
//!
//! A migration runs bounded **pre-copy rounds**: each round snapshots
//! the realm's dirty-granule set and ships it over the link while the
//! guest keeps running (and keeps dirtying pages, which land in the
//! next round). When the dirty set shrinks under
//! [`MigrateConfig::stop_copy_threshold`] — or [`MigrateConfig::max_rounds`]
//! rounds have run without converging — the vCPUs are quiesced and the
//! residue rides the link during the **downtime window** together with
//! the measurement-sealed REC state. Pre-copy wins on downtime exactly
//! when the per-granule link cost dominates: stop-and-copy-only ships
//! the *whole* image while the guest is stopped.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cg_sim::SimDuration;

/// A point-to-point link between two simulated nodes.
///
/// Transfer time is `latency + per_granule × granules`: one propagation
/// delay per message plus serialization of the 4 KiB granule payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterNodeLink {
    /// Per-message propagation latency.
    pub latency: SimDuration,
    /// Serialization cost per 4 KiB granule.
    pub per_granule: SimDuration,
}

impl InterNodeLink {
    /// A datacenter-grade link: 20 µs propagation, 1.6 µs per granule
    /// (≈ 2.5 GB/s effective — a 25 GbE NIC with protocol overhead).
    pub fn datacenter() -> InterNodeLink {
        InterNodeLink {
            latency: SimDuration::micros(20),
            per_granule: SimDuration::nanos(1_600),
        }
    }

    /// Time to move `granules` 4 KiB granules in one message.
    pub fn transfer_time(&self, granules: u64) -> SimDuration {
        self.latency + self.per_granule * granules
    }
}

impl Default for InterNodeLink {
    fn default() -> InterNodeLink {
        InterNodeLink::datacenter()
    }
}

/// Tuning knobs for one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateConfig {
    /// The inter-node link carrying pre-copy rounds and the final blob.
    pub link: InterNodeLink,
    /// Upper bound on pre-copy rounds before forcing stop-and-copy
    /// (the convergence bound — a fast dirtier never converges).
    pub max_rounds: u32,
    /// Dirty-granule count at or below which stop-and-copy starts.
    pub stop_copy_threshold: usize,
    /// Run pre-copy rounds at all; `false` is the stop-and-copy-only
    /// baseline (whole image moves during downtime).
    pub pre_copy: bool,
}

impl MigrateConfig {
    /// Defaults: datacenter link, 8 rounds, threshold 8, pre-copy on.
    pub fn new() -> MigrateConfig {
        MigrateConfig {
            link: InterNodeLink::datacenter(),
            max_rounds: 8,
            stop_copy_threshold: 8,
            pre_copy: true,
        }
    }

    /// The stop-and-copy-only ablation of this configuration.
    pub fn stop_copy_only(mut self) -> MigrateConfig {
        self.pre_copy = false;
        self
    }

    /// Should the driver leave the pre-copy loop and quiesce?
    ///
    /// `rounds_done` is the number of completed pre-copy rounds and
    /// `dirty` the size of the dirty set they left behind. With
    /// `pre_copy` off the answer is always yes.
    pub fn should_stop(&self, rounds_done: u32, dirty: usize) -> bool {
        !self.pre_copy || rounds_done >= self.max_rounds || dirty <= self.stop_copy_threshold
    }
}

impl Default for MigrateConfig {
    fn default() -> MigrateConfig {
        MigrateConfig::new()
    }
}

/// What one migration did — the bench-facing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationOutcome {
    /// Completed pre-copy rounds (0 for stop-and-copy-only).
    pub rounds: u32,
    /// Granules shipped while the guest was still running.
    pub granules_precopy: u64,
    /// Granules shipped during the downtime window.
    pub granules_stopcopy: u64,
    /// Transfer frames the link dropped and the driver re-sent.
    pub frames_retransmitted: u64,
    /// Pre-copy rounds the link stalled (injected fault).
    pub rounds_stalled: u64,
    /// Quiesce-to-resume wall time (the SLO number).
    pub downtime: SimDuration,
    /// Begin-to-resume wall time, pre-copy included.
    pub total: SimDuration,
    /// The destination rejected the import (tampered or mismatched
    /// blob) and the migration was rolled back.
    pub aborted: bool,
    /// After an abort, the VM resumed on the source node.
    pub resumed_on_source: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_granules() {
        let link = InterNodeLink::datacenter();
        assert_eq!(link.transfer_time(0), link.latency);
        let t1 = link.transfer_time(1);
        let t100 = link.transfer_time(100);
        assert_eq!(t1 - link.latency, link.per_granule);
        assert_eq!(t100 - link.latency, link.per_granule * 100);
    }

    #[test]
    fn stop_decision_honors_threshold_and_bound() {
        let cfg = MigrateConfig::new();
        assert!(!cfg.should_stop(0, 1000), "round 1 always runs");
        assert!(
            cfg.should_stop(0, cfg.stop_copy_threshold),
            "already converged"
        );
        assert!(
            cfg.should_stop(cfg.max_rounds, 1000),
            "bound forces the stop"
        );
        assert!(!cfg.should_stop(cfg.max_rounds - 1, 1000));
    }

    #[test]
    fn stop_copy_only_never_precopies() {
        let cfg = MigrateConfig::new().stop_copy_only();
        assert!(cfg.should_stop(0, u32::MAX as usize));
    }

    #[test]
    fn precopy_beats_stopcopy_on_downtime_when_converging() {
        // The arithmetic the migrate bench asserts at system level: if
        // rounds converge to `delta` dirty granules, downtime moves
        // `delta` instead of `image` granules.
        let link = InterNodeLink::datacenter();
        let image = 512u64;
        let delta = 8u64;
        assert!(link.transfer_time(delta) < link.transfer_time(image));
    }
}
