//! Measurement-sealed migration blobs: the payload of
//! `RMI_MIGRATION_EXPORT` / `RMI_MIGRATION_IMPORT`.
//!
//! A blob captures everything the destination RMM needs to rebuild a
//! realm — the protected-granule contents (modelled as per-page version
//! numbers), the REC contexts, and the realm's sealed measurement — and
//! binds it all under a seal chained with [`cg_cca::Measurement`]. The
//! untrusted host carries the blob between nodes; any splice, reorder,
//! or bit-flip in transit breaks the seal, and the destination RMM
//! additionally checks the sealed realm measurement against the value
//! the realm owner expects, so the host cannot substitute a different
//! (even well-formed) realm image.

use cg_cca::Measurement;

use crate::rec::Rec;

/// One protected granule in a migration transfer: its IPA and the
/// version its contents had when the frame was cut. The simulation
/// carries versions instead of bytes; a version mismatch stands in for
/// divergent page contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranuleFrame {
    /// Protected IPA of the page.
    pub ipa: u64,
    /// Content version (bumped on every tracked guest write).
    pub version: u64,
}

/// One vCPU context in a migration blob.
#[derive(Debug, Clone)]
pub struct RecFrame {
    /// The vCPU index within the realm.
    pub index: u32,
    /// The full monitor-side context (state, vGIC, timer, exit stats).
    pub rec: Rec,
}

/// A sealed realm image in transit between nodes.
#[derive(Debug, Clone)]
pub struct MigrationBlob {
    /// The source realm's sealed initial measurement; the destination
    /// verifies this equals the owner-expected value before import.
    pub realm_measurement: Measurement,
    /// The source RMM's platform measurement (same RMM image must run
    /// on both ends for the core-gapping guarantees to carry over).
    pub platform_measurement: Measurement,
    /// Declared vCPU count of the realm.
    pub num_recs: u32,
    /// Migration generation of the *source* realm (how many imports it
    /// had already been through); the destination stores `generation+1`.
    pub generation: u32,
    /// Every protected data page of the realm, sorted by IPA.
    pub frames: Vec<GranuleFrame>,
    /// Number of granules that were still dirty at stop-and-copy — the
    /// part of the image that rides the inter-node link during the
    /// downtime window (everything else was pre-copied).
    pub delta: u64,
    /// The vCPU contexts, sorted by index.
    pub recs: Vec<RecFrame>,
    /// Seal over all of the above.
    pub seal: Measurement,
}

impl MigrationBlob {
    /// Builds a blob and computes its seal.
    pub fn sealed(
        realm_measurement: Measurement,
        platform_measurement: Measurement,
        num_recs: u32,
        generation: u32,
        frames: Vec<GranuleFrame>,
        delta: u64,
        recs: Vec<RecFrame>,
    ) -> MigrationBlob {
        let mut blob = MigrationBlob {
            realm_measurement,
            platform_measurement,
            num_recs,
            generation,
            frames,
            delta,
            recs,
            seal: Measurement::ZERO,
        };
        blob.seal = blob.compute_seal();
        blob
    }

    /// The seal the blob's current contents hash to.
    pub fn compute_seal(&self) -> Measurement {
        let mut m = Measurement::of(b"cg-migrate blob v1");
        m.extend(self.realm_measurement);
        m.extend(self.platform_measurement);
        m.extend(Measurement::of(&u64::from(self.num_recs).to_le_bytes()));
        m.extend(Measurement::of(&u64::from(self.generation).to_le_bytes()));
        m.extend(Measurement::of(&self.delta.to_le_bytes()));
        for f in &self.frames {
            m.extend(Measurement::of(&f.ipa.to_le_bytes()));
            m.extend(Measurement::of(&f.version.to_le_bytes()));
        }
        for r in &self.recs {
            m.extend(Measurement::of(&u64::from(r.index).to_le_bytes()));
            let halted = r.rec.state() == crate::rec::RecState::Halted;
            m.extend(Measurement::of(&[u8::from(halted)]));
            m.extend(Measurement::of(&r.rec.exits_total().to_le_bytes()));
        }
        m
    }

    /// Does the stored seal match the contents?
    pub fn verify_seal(&self) -> bool {
        self.seal == self.compute_seal()
    }

    /// Corrupts the blob the way an in-transit tamperer would: bumps a
    /// page version without re-sealing (or, for an empty image, flips a
    /// bit of the sealed measurement). Used by fault injection.
    pub fn tamper(&mut self) {
        match self.frames.first_mut() {
            Some(f) => f.version ^= 1,
            None => self.realm_measurement.0[0] ^= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob() -> MigrationBlob {
        MigrationBlob::sealed(
            Measurement::of(b"realm"),
            Measurement::of(b"platform"),
            2,
            0,
            vec![
                GranuleFrame {
                    ipa: 0x1000,
                    version: 3,
                },
                GranuleFrame {
                    ipa: 0x2000,
                    version: 0,
                },
            ],
            1,
            vec![
                RecFrame {
                    index: 0,
                    rec: Rec::new(),
                },
                RecFrame {
                    index: 1,
                    rec: Rec::new(),
                },
            ],
        )
    }

    #[test]
    fn seal_round_trips() {
        let b = blob();
        assert!(b.verify_seal());
    }

    #[test]
    fn tamper_breaks_seal() {
        let mut b = blob();
        b.tamper();
        assert!(!b.verify_seal());
    }

    #[test]
    fn tamper_on_empty_image_breaks_seal() {
        let mut b = MigrationBlob::sealed(
            Measurement::of(b"realm"),
            Measurement::of(b"platform"),
            1,
            0,
            Vec::new(),
            0,
            Vec::new(),
        );
        b.tamper();
        assert!(!b.verify_seal());
    }

    #[test]
    fn seal_binds_every_field() {
        let base = blob();
        let mut v = blob();
        v.frames[1].ipa = 0x3000;
        assert_ne!(v.compute_seal(), base.seal);
        let mut v = blob();
        v.delta = 2;
        assert_ne!(v.compute_seal(), base.seal);
        let mut v = blob();
        v.recs[1].rec.halt();
        assert_ne!(v.compute_seal(), base.seal);
        let mut v = blob();
        v.generation = 1;
        assert_ne!(v.compute_seal(), base.seal);
    }
}
