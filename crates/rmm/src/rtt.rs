//! Realm translation tables: the stage-2 page tables the RMM manages on
//! behalf of (and protected from) the host.
//!
//! The model follows the RMM specification's RTT structure: a 4-level
//! table over a 48-bit IPA space with 4 KiB granules. The host drives
//! table construction through RMI calls (`RTT_CREATE` per level, then
//! `DATA_CREATE` / `RTT_MAP_UNPROTECTED` for leaves); the RMM validates
//! every step. The top bit of the IPA space splits it into a *protected*
//! half (realm-private, encrypted memory) and an *unprotected* half
//! (shared with the host — virtio rings, RPC areas).

use std::collections::HashMap;
use std::fmt;

use cg_cca::RttLevel;
use cg_machine::GranuleAddr;

/// Width of the modelled IPA space in bits.
pub const IPA_WIDTH: u32 = 48;

/// Mask selecting the unprotected half of the IPA space.
pub const UNPROTECTED_BIT: u64 = 1 << (IPA_WIDTH - 1);

/// Returns `true` if `ipa` lies in the unprotected (host-shared) half.
pub fn ipa_is_unprotected(ipa: u64) -> bool {
    ipa & UNPROTECTED_BIT != 0
}

/// Errors from RTT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RttError {
    /// The parent table for this level does not exist yet.
    MissingParent,
    /// A table already exists at this level for this IPA range.
    TableExists,
    /// The walk reached no leaf table for this IPA.
    Unmapped,
    /// A mapping already exists at this IPA.
    AlreadyMapped,
    /// The IPA is outside the modelled space.
    BadIpa,
    /// Protection mismatch: e.g. mapping unprotected memory at a
    /// protected IPA.
    ProtectionMismatch,
    /// The table still holds live entries (cannot be destroyed).
    TableInUse,
}

impl fmt::Display for RttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RttError::MissingParent => "parent table missing",
            RttError::TableExists => "table already exists",
            RttError::Unmapped => "no mapping for IPA",
            RttError::AlreadyMapped => "IPA already mapped",
            RttError::BadIpa => "IPA outside address space",
            RttError::ProtectionMismatch => "protected/unprotected mismatch",
            RttError::TableInUse => "table still holds entries",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RttError {}

/// A leaf mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The physical granule backing the page.
    pub pa: GranuleAddr,
    /// Whether this is realm-protected memory.
    pub protected: bool,
}

/// IPA span covered by one *entry* at `level` (so a table at `level`
/// covers 512 of these).
fn entry_span(level: RttLevel) -> u64 {
    4096u64 << (9 * (3 - level.0 as u32))
}

/// IPA span covered by a whole table at `level`.
fn table_span(level: RttLevel) -> u64 {
    // A level-0 table covers the whole space (512 entries of 512 GiB
    // would exceed 48 bits; clamp to the space size).
    (entry_span(level).saturating_mul(512)).min(1 << IPA_WIDTH)
}

/// Base IPA of the table at `level` covering `ipa`.
fn table_base(level: RttLevel, ipa: u64) -> u64 {
    ipa & !(table_span(level) - 1)
}

/// One realm's stage-2 translation tables.
///
/// # Example
///
/// ```
/// use cg_cca::RttLevel;
/// use cg_machine::GranuleAddr;
/// use cg_rmm::Rtt;
///
/// let g = |n: u64| GranuleAddr::new(n * 4096).unwrap();
/// let mut rtt = Rtt::new(g(0));
/// // Build the table chain for IPA 0, then map a page.
/// rtt.create_table(RttLevel(1), 0, g(1)).unwrap();
/// rtt.create_table(RttLevel(2), 0, g(2)).unwrap();
/// rtt.create_table(RttLevel(3), 0, g(3)).unwrap();
/// rtt.map(0x3000, g(10), true).unwrap();
/// assert_eq!(rtt.translate(0x3123).unwrap().pa, g(10));
/// ```
#[derive(Debug, Clone)]
pub struct Rtt {
    /// Table granules: (level, table base IPA) → granule.
    tables: HashMap<(u8, u64), GranuleAddr>,
    /// Leaf mappings: page-aligned IPA → mapping.
    leaves: HashMap<u64, Mapping>,
    root: GranuleAddr,
}

impl Rtt {
    /// Creates the RTT with its root (level-0) table in `root`.
    pub fn new(root: GranuleAddr) -> Rtt {
        let mut tables = HashMap::new();
        tables.insert((0, 0), root);
        Rtt {
            tables,
            leaves: HashMap::new(),
            root,
        }
    }

    /// The root table granule.
    pub fn root(&self) -> GranuleAddr {
        self.root
    }

    /// Number of table granules (including the root).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of leaf mappings.
    pub fn mapping_count(&self) -> usize {
        self.leaves.len()
    }

    fn check_ipa(ipa: u64) -> Result<(), RttError> {
        if ipa >> IPA_WIDTH != 0 {
            Err(RttError::BadIpa)
        } else {
            Ok(())
        }
    }

    /// Creates a table at `level` covering `ipa`, stored in `granule`
    /// (RMI_RTT_CREATE).
    ///
    /// # Errors
    ///
    /// [`RttError::BadIpa`], [`RttError::TableExists`], or
    /// [`RttError::MissingParent`] if the covering table at `level - 1`
    /// has not been created.
    pub fn create_table(
        &mut self,
        level: RttLevel,
        ipa: u64,
        granule: GranuleAddr,
    ) -> Result<(), RttError> {
        Self::check_ipa(ipa)?;
        if level.0 == 0 || level.0 > 3 {
            return Err(RttError::BadIpa);
        }
        let base = table_base(level, ipa);
        if self.tables.contains_key(&(level.0, base)) {
            return Err(RttError::TableExists);
        }
        let parent = RttLevel(level.0 - 1);
        if !self
            .tables
            .contains_key(&(parent.0, table_base(parent, ipa)))
        {
            return Err(RttError::MissingParent);
        }
        self.tables.insert((level.0, base), granule);
        Ok(())
    }

    /// Destroys an empty table at `level` covering `ipa`, returning its
    /// granule (RMI_RTT_DESTROY).
    ///
    /// # Errors
    ///
    /// [`RttError::Unmapped`] if no such table;
    /// [`RttError::TableInUse`] if mappings or child tables still live
    /// under it.
    pub fn destroy_table(&mut self, level: RttLevel, ipa: u64) -> Result<GranuleAddr, RttError> {
        Self::check_ipa(ipa)?;
        if level.0 == 0 {
            return Err(RttError::TableInUse); // the root is never destroyed
        }
        let base = table_base(level, ipa);
        if !self.tables.contains_key(&(level.0, base)) {
            return Err(RttError::Unmapped);
        }
        let span = table_span(level);
        let in_range = |a: u64| a >= base && a < base + span;
        if self.leaves.keys().any(|&l| in_range(l)) {
            return Err(RttError::TableInUse);
        }
        if self
            .tables
            .keys()
            .any(|&(lv, b)| lv > level.0 && in_range(b))
        {
            return Err(RttError::TableInUse);
        }
        Ok(self
            .tables
            .remove(&(level.0, base))
            .expect("checked present"))
    }

    /// Maps a 4 KiB page at `ipa` (leaf level).
    ///
    /// # Errors
    ///
    /// [`RttError::MissingParent`] if the level-3 table is absent;
    /// [`RttError::AlreadyMapped`]; [`RttError::ProtectionMismatch`] if
    /// `protected` disagrees with the IPA half;
    /// [`RttError::BadIpa`] for unaligned or out-of-range addresses.
    pub fn map(&mut self, ipa: u64, pa: GranuleAddr, protected: bool) -> Result<(), RttError> {
        Self::check_ipa(ipa)?;
        if !ipa.is_multiple_of(4096) {
            return Err(RttError::BadIpa);
        }
        if protected == ipa_is_unprotected(ipa) {
            return Err(RttError::ProtectionMismatch);
        }
        let leaf_table = table_base(RttLevel::LEAF, ipa);
        if !self.tables.contains_key(&(3, leaf_table)) {
            return Err(RttError::MissingParent);
        }
        if self.leaves.contains_key(&ipa) {
            return Err(RttError::AlreadyMapped);
        }
        self.leaves.insert(ipa, Mapping { pa, protected });
        Ok(())
    }

    /// Unmaps the page at `ipa`, returning the mapping.
    ///
    /// # Errors
    ///
    /// [`RttError::Unmapped`] if nothing is mapped there.
    pub fn unmap(&mut self, ipa: u64) -> Result<Mapping, RttError> {
        Self::check_ipa(ipa)?;
        self.leaves.remove(&ipa).ok_or(RttError::Unmapped)
    }

    /// Translates an arbitrary IPA to its mapping.
    ///
    /// # Errors
    ///
    /// [`RttError::Unmapped`] on a stage-2 fault.
    pub fn translate(&self, ipa: u64) -> Result<Mapping, RttError> {
        Self::check_ipa(ipa)?;
        self.leaves
            .get(&(ipa & !4095))
            .copied()
            .ok_or(RttError::Unmapped)
    }

    /// The number of table levels that must still be created before `ipa`
    /// can be mapped (0 when ready). Hosts use this to drive the
    /// create-missing-tables loop KVM performs on stage-2 faults.
    pub fn missing_levels(&self, ipa: u64) -> Vec<RttLevel> {
        (1..=3u8)
            .map(RttLevel)
            .filter(|&lv| !self.tables.contains_key(&(lv.0, table_base(lv, ipa))))
            .collect()
    }

    /// Iterates over all leaf mappings as `(ipa, mapping)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Mapping)> + '_ {
        self.leaves.iter().map(|(&ipa, &m)| (ipa, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u64) -> GranuleAddr {
        GranuleAddr::new(n * 4096).unwrap()
    }

    fn rtt_with_chain(ipa: u64) -> Rtt {
        let mut rtt = Rtt::new(g(0));
        rtt.create_table(RttLevel(1), ipa, g(1)).unwrap();
        rtt.create_table(RttLevel(2), ipa, g(2)).unwrap();
        rtt.create_table(RttLevel(3), ipa, g(3)).unwrap();
        rtt
    }

    #[test]
    fn spans_are_correct() {
        assert_eq!(entry_span(RttLevel(3)), 4096);
        assert_eq!(entry_span(RttLevel(2)), 2 << 20);
        assert_eq!(entry_span(RttLevel(1)), 1 << 30);
        assert_eq!(table_span(RttLevel(3)), 2 << 20);
        assert_eq!(table_span(RttLevel(0)), 1 << 48);
    }

    #[test]
    fn table_chain_required_in_order() {
        let mut rtt = Rtt::new(g(0));
        assert_eq!(
            rtt.create_table(RttLevel(2), 0, g(9)),
            Err(RttError::MissingParent)
        );
        rtt.create_table(RttLevel(1), 0, g(1)).unwrap();
        rtt.create_table(RttLevel(2), 0, g(2)).unwrap();
        assert_eq!(
            rtt.create_table(RttLevel(2), 0, g(5)),
            Err(RttError::TableExists)
        );
    }

    #[test]
    fn map_requires_leaf_table() {
        let mut rtt = Rtt::new(g(0));
        assert_eq!(rtt.map(0, g(7), true), Err(RttError::MissingParent));
        let mut rtt = rtt_with_chain(0);
        rtt.map(0, g(7), true).unwrap();
        assert_eq!(rtt.map(0, g(8), true), Err(RttError::AlreadyMapped));
    }

    #[test]
    fn translate_and_unmap() {
        let mut rtt = rtt_with_chain(0);
        rtt.map(0x5000, g(7), true).unwrap();
        assert_eq!(rtt.translate(0x5FFF).unwrap().pa, g(7));
        assert_eq!(rtt.translate(0x6000), Err(RttError::Unmapped));
        let m = rtt.unmap(0x5000).unwrap();
        assert_eq!(m.pa, g(7));
        assert_eq!(rtt.translate(0x5000), Err(RttError::Unmapped));
    }

    #[test]
    fn protection_matches_ipa_half() {
        let mut rtt = rtt_with_chain(0);
        // Protected mapping in the unprotected half: rejected.
        let unprot_ipa = UNPROTECTED_BIT;
        assert_eq!(
            rtt.map(0x1000, g(7), false),
            Err(RttError::ProtectionMismatch)
        );
        // Build a chain for the unprotected half and map shared memory.
        rtt.create_table(RttLevel(1), unprot_ipa, g(11)).unwrap();
        rtt.create_table(RttLevel(2), unprot_ipa, g(12)).unwrap();
        rtt.create_table(RttLevel(3), unprot_ipa, g(13)).unwrap();
        assert_eq!(
            rtt.map(unprot_ipa, g(7), true),
            Err(RttError::ProtectionMismatch)
        );
        rtt.map(unprot_ipa, g(7), false).unwrap();
        assert!(!rtt.translate(unprot_ipa).unwrap().protected);
    }

    #[test]
    fn unaligned_and_out_of_range_rejected() {
        let mut rtt = rtt_with_chain(0);
        assert_eq!(rtt.map(0x1001, g(7), true), Err(RttError::BadIpa));
        assert_eq!(rtt.translate(1 << 60), Err(RttError::BadIpa));
    }

    #[test]
    fn destroy_requires_empty_table() {
        let mut rtt = rtt_with_chain(0);
        rtt.map(0x1000, g(7), true).unwrap();
        assert_eq!(rtt.destroy_table(RttLevel(3), 0), Err(RttError::TableInUse));
        rtt.unmap(0x1000).unwrap();
        assert_eq!(rtt.destroy_table(RttLevel(3), 0).unwrap(), g(3));
        // Level 2 now empty of children? Level-3 table removed, so yes.
        assert_eq!(rtt.destroy_table(RttLevel(2), 0).unwrap(), g(2));
        // Destroying level 1 with no children is fine; root never.
        assert_eq!(rtt.destroy_table(RttLevel(1), 0).unwrap(), g(1));
        assert_eq!(rtt.destroy_table(RttLevel(0), 0), Err(RttError::TableInUse));
    }

    #[test]
    fn destroy_with_child_table_rejected() {
        let mut rtt = rtt_with_chain(0);
        assert_eq!(rtt.destroy_table(RttLevel(1), 0), Err(RttError::TableInUse));
    }

    #[test]
    fn missing_levels_reports_chain() {
        let mut rtt = Rtt::new(g(0));
        assert_eq!(
            rtt.missing_levels(0),
            vec![RttLevel(1), RttLevel(2), RttLevel(3)]
        );
        rtt.create_table(RttLevel(1), 0, g(1)).unwrap();
        assert_eq!(rtt.missing_levels(0), vec![RttLevel(2), RttLevel(3)]);
        rtt.create_table(RttLevel(2), 0, g(2)).unwrap();
        rtt.create_table(RttLevel(3), 0, g(3)).unwrap();
        assert!(rtt.missing_levels(0).is_empty());
        // A distant IPA shares only the upper tables.
        assert_eq!(rtt.missing_levels(3 << 20), vec![RttLevel(3)]);
    }

    #[test]
    fn iter_and_counts() {
        let mut rtt = rtt_with_chain(0);
        rtt.map(0x1000, g(7), true).unwrap();
        rtt.map(0x2000, g(8), true).unwrap();
        assert_eq!(rtt.mapping_count(), 2);
        assert_eq!(rtt.table_count(), 4); // root + 3 levels
        let ipas: Vec<u64> = rtt.iter().map(|(ipa, _)| ipa).collect();
        assert!(ipas.contains(&0x1000) && ipas.contains(&0x2000));
    }
}
