//! Virtual interrupt management and the filtered list-register view.
//!
//! This implements the paper's fig. 5. The host believes it manages the
//! guest's virtual interrupts through the list the run call carries; the
//! RMM maintains the *true* set, into which it also injects delegated
//! sources (virtual timer, virtual IPIs) without host involvement. On exit
//! to the host, the RMM synchronises the physical list registers one last
//! time and returns only the *filtered* view, hiding delegated interrupts
//! so KVM's bookkeeping stays consistent.

use std::collections::BTreeSet;

use cg_machine::{CoreId, Gic, IntId};
use cg_sim::{TraceHandle, TraceKind};

/// Which interrupt sources the RMM emulates locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegationConfig {
    /// Emulate the virtual timer in the RMM (≈150 added lines in the
    /// prototype).
    pub timer: bool,
    /// Emulate virtual IPIs (SGIs) in the RMM (≈70 added lines).
    pub ipi: bool,
}

impl DelegationConfig {
    /// Both delegations enabled (the paper's optimised configuration).
    pub const FULL: DelegationConfig = DelegationConfig {
        timer: true,
        ipi: true,
    };

    /// No delegation (the baseline RMM behaviour).
    pub const NONE: DelegationConfig = DelegationConfig {
        timer: false,
        ipi: false,
    };

    /// Returns `true` if `intid` is hidden from the host under this
    /// configuration.
    pub fn hides(&self, intid: IntId) -> bool {
        (self.timer && intid == IntId::VTIMER) || (self.ipi && intid.is_sgi())
    }
}

/// Result of synchronising pending interrupts into the physical list
/// registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterruptPlan {
    /// Interrupts newly staged into list registers.
    pub injected: Vec<IntId>,
    /// Interrupts left pending because the list was full.
    pub overflowed: Vec<IntId>,
}

/// The RMM-side virtual interrupt state of one REC.
///
/// # Example
///
/// ```
/// use cg_machine::{CoreId, Gic, IntId};
/// use cg_rmm::VirtualGic;
/// use cg_rmm::interrupts::DelegationConfig;
///
/// let mut gic = Gic::new(1, 16);
/// let mut vgic = VirtualGic::new();
/// // Host provides a device interrupt; RMM injects its own timer tick.
/// vgic.host_provides(&[IntId::spi(1)], DelegationConfig::FULL);
/// vgic.inject_local(IntId::VTIMER);
/// vgic.sync_to_lrs(CoreId(0), &mut gic);
/// // The host-visible view hides the delegated timer.
/// let visible = vgic.filtered_view(CoreId(0), &gic, DelegationConfig::FULL);
/// assert_eq!(visible, vec![IntId::spi(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualGic {
    /// Pending virtual interrupts not yet staged in list registers.
    pending: BTreeSet<IntId>,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
    /// Realm/REC owning this state, for trace attribution.
    owner: (u32, u32),
}

impl VirtualGic {
    /// Creates empty virtual interrupt state.
    pub fn new() -> VirtualGic {
        VirtualGic::default()
    }

    /// Attaches a structured trace, attributing records to realm `realm`
    /// / REC `rec`.
    pub fn set_trace(&mut self, trace: TraceHandle, realm: u32, rec: u32) {
        self.trace = trace;
        self.owner = (realm, rec);
    }

    fn trace_irq(&self, core: Option<u16>, detail: impl FnOnce() -> String) {
        let (realm, rec) = self.owner;
        self.trace
            .record_vm(TraceKind::Irq, core, Some(realm), Some(rec), detail);
    }

    /// Step ① of fig. 5: the host's run call provides its interrupt list.
    ///
    /// Delegated INTIDs in the host list are ignored — the host cannot
    /// inject sources the RMM owns (a malicious hypervisor could otherwise
    /// forge timer interrupts).
    pub fn host_provides(&mut self, list: &[IntId], delegation: DelegationConfig) {
        for &intid in list {
            if !delegation.hides(intid) {
                self.pending.insert(intid);
            }
        }
    }

    /// Step ④ of fig. 5: the RMM injects a locally emulated interrupt
    /// (timer tick, delegated IPI).
    pub fn inject_local(&mut self, intid: IntId) {
        self.pending.insert(intid);
        self.trace_irq(None, || format!("vgic.inject_local {intid}"));
    }

    /// Steps ②/②′: move pending interrupts into free physical list
    /// registers on `core`.
    pub fn sync_to_lrs(&mut self, core: CoreId, gic: &mut Gic) -> InterruptPlan {
        let mut injected = Vec::new();
        let mut overflowed = Vec::new();
        let pending: Vec<IntId> = self.pending.iter().copied().collect();
        for intid in pending {
            if gic.inject_virtual(core, intid).is_some() {
                self.pending.remove(&intid);
                injected.push(intid);
            } else {
                overflowed.push(intid);
            }
        }
        if !injected.is_empty() || !overflowed.is_empty() {
            self.trace_irq(Some(core.0), || {
                format!("vgic.sync injected={injected:?} overflowed={overflowed:?}")
            });
        }
        InterruptPlan {
            injected,
            overflowed,
        }
    }

    /// Step ⑤: the host-visible interrupt list on exit — everything still
    /// staged in list registers or pending, minus delegated sources.
    pub fn filtered_view(
        &self,
        core: CoreId,
        gic: &Gic,
        delegation: DelegationConfig,
    ) -> Vec<IntId> {
        let mut view: BTreeSet<IntId> = self
            .pending
            .iter()
            .copied()
            .filter(|&i| !delegation.hides(i))
            .collect();
        for (_, lr) in gic.lr_snapshot(core) {
            if !delegation.hides(lr.vintid) {
                view.insert(lr.vintid);
            }
        }
        view.into_iter().collect()
    }

    /// Interrupts pending injection (not yet in list registers).
    pub fn pending(&self) -> Vec<IntId> {
        self.pending.iter().copied().collect()
    }

    /// Returns `true` if nothing is pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Returns `true` if `intid` is pending or staged.
    pub fn has_pending(&self, core: CoreId, gic: &Gic, intid: IntId) -> bool {
        self.pending.contains(&intid) || gic.find_lr(core, intid).is_some()
    }

    /// Drops all pending state (REC destroyed).
    pub fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);

    #[test]
    fn host_cannot_inject_delegated_sources() {
        let mut vgic = VirtualGic::new();
        vgic.host_provides(
            &[IntId::VTIMER, IntId::sgi(3), IntId::spi(0)],
            DelegationConfig::FULL,
        );
        assert_eq!(vgic.pending(), vec![IntId::spi(0)]);
    }

    #[test]
    fn host_can_inject_everything_without_delegation() {
        let mut vgic = VirtualGic::new();
        vgic.host_provides(&[IntId::VTIMER, IntId::sgi(3)], DelegationConfig::NONE);
        assert_eq!(vgic.pending().len(), 2);
    }

    #[test]
    fn sync_moves_pending_into_lrs() {
        let mut gic = Gic::new(1, 16);
        let mut vgic = VirtualGic::new();
        vgic.inject_local(IntId::VTIMER);
        vgic.inject_local(IntId::spi(4));
        let plan = vgic.sync_to_lrs(C0, &mut gic);
        assert_eq!(plan.injected.len(), 2);
        assert!(plan.overflowed.is_empty());
        assert!(vgic.is_idle());
        assert_eq!(gic.lr_snapshot(C0).len(), 2);
    }

    #[test]
    fn overflow_stays_pending() {
        let mut gic = Gic::new(1, 2);
        let mut vgic = VirtualGic::new();
        for n in 0..4 {
            vgic.inject_local(IntId::spi(n));
        }
        let plan = vgic.sync_to_lrs(C0, &mut gic);
        assert_eq!(plan.injected.len(), 2);
        assert_eq!(plan.overflowed.len(), 2);
        assert_eq!(vgic.pending().len(), 2);
    }

    #[test]
    fn filtered_view_hides_delegated() {
        let mut gic = Gic::new(1, 16);
        let mut vgic = VirtualGic::new();
        vgic.inject_local(IntId::VTIMER);
        vgic.inject_local(IntId::sgi(2));
        vgic.inject_local(IntId::spi(9));
        vgic.sync_to_lrs(C0, &mut gic);
        let full = vgic.filtered_view(C0, &gic, DelegationConfig::NONE);
        assert_eq!(full.len(), 3);
        let filtered = vgic.filtered_view(C0, &gic, DelegationConfig::FULL);
        assert_eq!(filtered, vec![IntId::spi(9)]);
    }

    #[test]
    fn filtered_view_includes_unstaged_pending() {
        let gic = Gic::new(1, 16);
        let mut vgic = VirtualGic::new();
        vgic.inject_local(IntId::spi(3));
        let view = vgic.filtered_view(C0, &gic, DelegationConfig::FULL);
        assert_eq!(view, vec![IntId::spi(3)]);
    }

    #[test]
    fn has_pending_checks_both_places() {
        let mut gic = Gic::new(1, 16);
        let mut vgic = VirtualGic::new();
        vgic.inject_local(IntId::spi(1));
        assert!(vgic.has_pending(C0, &gic, IntId::spi(1)));
        vgic.sync_to_lrs(C0, &mut gic);
        assert!(vgic.has_pending(C0, &gic, IntId::spi(1)));
        assert!(!vgic.has_pending(C0, &gic, IntId::spi(2)));
    }

    #[test]
    fn reset_clears() {
        let mut vgic = VirtualGic::new();
        vgic.inject_local(IntId::spi(1));
        vgic.reset();
        assert!(vgic.is_idle());
    }
}
