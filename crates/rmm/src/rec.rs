//! REC (realm execution context) state: one confidential vCPU.

use std::fmt;

use cg_sim::SimTime;

use crate::interrupts::VirtualGic;

/// REC lifecycle / scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecState {
    /// Created, not currently executing.
    Ready,
    /// Currently entered on a physical core.
    Running,
    /// The vCPU halted itself (PSCI CPU_OFF / SYSTEM_OFF).
    Halted,
}

impl fmt::Display for RecState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecState::Ready => "ready",
            RecState::Running => "running",
            RecState::Halted => "halted",
        };
        f.write_str(s)
    }
}

/// One vCPU's monitor-side context.
///
/// The architectural register file is abstract (the simulation never
/// interprets guest instructions); what matters is the state the RMM
/// protects and the interrupt/timer bookkeeping the core-gapping
/// extensions add.
#[derive(Debug, Clone, Default)]
pub struct Rec {
    state: Option<RecState>,
    vgic: VirtualGic,
    /// Delegated virtual-timer deadline, if armed.
    vtimer_deadline: Option<SimTime>,
    /// The host asked this vCPU to exit (KVM "kick", e.g. to inject a
    /// device interrupt from the VMM).
    kick_requested: bool,
    /// Exit statistics for table 4.
    exits_total: u64,
    exits_interrupt: u64,
}

impl Rec {
    /// Creates a ready REC.
    pub fn new() -> Rec {
        Rec {
            state: Some(RecState::Ready),
            ..Rec::default()
        }
    }

    /// Current state.
    pub fn state(&self) -> RecState {
        self.state.unwrap_or(RecState::Ready)
    }

    /// Marks the REC entered on a core.
    ///
    /// Returns `false` unless it was ready.
    pub fn enter(&mut self) -> bool {
        if self.state() == RecState::Ready {
            self.state = Some(RecState::Running);
            true
        } else {
            false
        }
    }

    /// Marks the REC exited back to ready.
    pub fn exit(&mut self) {
        if self.state() == RecState::Running {
            self.state = Some(RecState::Ready);
        }
    }

    /// Marks the vCPU halted (graceful shutdown).
    pub fn halt(&mut self) {
        self.state = Some(RecState::Halted);
    }

    /// Immutable access to the virtual interrupt state.
    pub fn vgic(&self) -> &VirtualGic {
        &self.vgic
    }

    /// Mutable access to the virtual interrupt state.
    pub fn vgic_mut(&mut self) -> &mut VirtualGic {
        &mut self.vgic
    }

    /// Arms the delegated virtual timer.
    pub fn set_vtimer(&mut self, deadline: Option<SimTime>) {
        self.vtimer_deadline = deadline;
    }

    /// The delegated virtual-timer deadline, if armed.
    pub fn vtimer(&self) -> Option<SimTime> {
        self.vtimer_deadline
    }

    /// Requests that the vCPU exit to the host at the next opportunity.
    pub fn request_kick(&mut self) {
        self.kick_requested = true;
    }

    /// Consumes a pending kick request, returning whether one was set.
    pub fn take_kick(&mut self) -> bool {
        std::mem::replace(&mut self.kick_requested, false)
    }

    /// Returns `true` if a kick is pending.
    pub fn kick_pending(&self) -> bool {
        self.kick_requested
    }

    /// Records an exit to the host for statistics (table 4).
    pub fn count_exit(&mut self, interrupt_related: bool) {
        self.exits_total += 1;
        if interrupt_related {
            self.exits_interrupt += 1;
        }
    }

    /// Total exits to the host.
    pub fn exits_total(&self) -> u64 {
        self.exits_total
    }

    /// Interrupt-related exits to the host.
    pub fn exits_interrupt(&self) -> u64 {
        self.exits_interrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_lifecycle() {
        let mut rec = Rec::new();
        assert_eq!(rec.state(), RecState::Ready);
        assert!(rec.enter());
        assert_eq!(rec.state(), RecState::Running);
        assert!(!rec.enter(), "double entry rejected");
        rec.exit();
        assert_eq!(rec.state(), RecState::Ready);
        rec.halt();
        assert!(!rec.enter(), "halted vCPU cannot run");
    }

    #[test]
    fn kick_request_consumed_once() {
        let mut rec = Rec::new();
        assert!(!rec.take_kick());
        rec.request_kick();
        assert!(rec.kick_pending());
        assert!(rec.take_kick());
        assert!(!rec.take_kick());
    }

    #[test]
    fn vtimer_bookkeeping() {
        let mut rec = Rec::new();
        assert_eq!(rec.vtimer(), None);
        rec.set_vtimer(Some(SimTime::from_nanos(100)));
        assert_eq!(rec.vtimer(), Some(SimTime::from_nanos(100)));
        rec.set_vtimer(None);
        assert_eq!(rec.vtimer(), None);
    }

    #[test]
    fn exit_statistics() {
        let mut rec = Rec::new();
        rec.count_exit(true);
        rec.count_exit(false);
        rec.count_exit(true);
        assert_eq!(rec.exits_total(), 3);
        assert_eq!(rec.exits_interrupt(), 2);
    }
}
