//! # cg-rmm — the realm management monitor
//!
//! A model of Arm's RMM (the CVM security monitor of paper §2.1) with the
//! paper's core-gapping modifications. The baseline behaviour follows
//! TF-RMM / the RMM specification: granule delegation, realm and REC
//! lifecycle, stage-2 translation tables (RTTs), context save/restore on
//! every transition, and virtual-interrupt management through list
//! registers.
//!
//! The core-gapping extensions (paper §4) are:
//!
//! * **Core dedication** ([`coregap`]): cores handed over by the host's
//!   hotplug path are owned by the RMM until released; the RMM never
//!   returns control of a dedicated core to the host.
//! * **vCPU→core binding enforcement**: the first `REC_ENTER` of a vCPU on
//!   a dedicated core binds that core to the vCPU's realm; dispatching the
//!   vCPU elsewhere — or any other realm's vCPU on the same core — fails
//!   with [`cg_cca::RmiStatus::ErrorCoreBinding`].
//! * **Interrupt delegation** ([`interrupts`]): the virtual timer and
//!   virtual IPIs are emulated inside the RMM (≈150 + 70 added lines in
//!   the prototype), eliminating the dominant source of VM exits
//!   (table 4: 28× fewer exits) while staying transparent to KVM through
//!   a *filtered* virtual-interrupt list (fig. 5).
//! * **Attested live migration** ([`dirty`], [`migrate`]): dirty-granule
//!   tracking for pre-copy rounds, plus `RMI_MIGRATION_EXPORT` /
//!   `RMI_MIGRATION_IMPORT` moving a quiesced realm between nodes as a
//!   measurement-sealed blob the untrusted transport cannot splice.
//!
//! The RMM is a passive state machine: methods take the current time and
//! the [`cg_machine::Machine`], mutate state, and return dispositions +
//! costs. Transport (same-core SMC vs cross-core RPC) is chosen by the
//! system layer in `cg-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coregap;
pub mod dirty;
pub mod interrupts;
pub mod migrate;
pub mod realm;
pub mod rec;
pub mod rmm;
pub mod rtt;

pub use coregap::{CoreGap, CoreGapError};
pub use dirty::DirtyBitmap;
pub use interrupts::{InterruptPlan, VirtualGic};
pub use migrate::{GranuleFrame, MigrationBlob, RecFrame};
pub use realm::{Realm, RealmState};
pub use rec::{Rec, RecState};
pub use rmm::{Disposition, GuestEvent, RmiOutcome, Rmm, RmmConfig, REALM_DOORBELL_SGI};
pub use rtt::{Rtt, RttError};
