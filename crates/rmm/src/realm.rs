//! Realm descriptors: per-CVM state tracked by the RMM.

use std::collections::BTreeMap;
use std::fmt;

use cg_cca::Measurement;
use cg_machine::{GranuleAddr, RealmId};

use crate::dirty::DirtyBitmap;
use crate::migrate::{GranuleFrame, MigrationBlob};
use crate::rec::Rec;
use crate::rtt::Rtt;

/// Realm lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealmState {
    /// Created; memory may be loaded and measured; RECs may be created.
    New,
    /// Activated: the initial measurement is sealed and vCPUs may run.
    Active,
    /// Destruction in progress or complete.
    Destroyed,
}

impl fmt::Display for RealmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RealmState::New => "new",
            RealmState::Active => "active",
            RealmState::Destroyed => "destroyed",
        };
        f.write_str(s)
    }
}

/// One realm (confidential VM) as the RMM sees it.
#[derive(Debug)]
pub struct Realm {
    id: RealmId,
    state: RealmState,
    rd: GranuleAddr,
    rtt: Rtt,
    recs: BTreeMap<u32, Rec>,
    num_recs: u32,
    rim: Measurement,
    data_pages: u64,
    /// Per-protected-page content versions, keyed by IPA. The sorted
    /// map doubles as the deterministic enumeration of protected data
    /// pages (the RTT's leaf map iterates in hash order).
    page_versions: BTreeMap<u64, u64>,
    /// Dirty bits accumulated while `tracking` is on.
    dirty: DirtyBitmap,
    /// Is dirty tracking (an in-progress migration) active?
    tracking: bool,
    /// How many times this realm has been imported onto a new node.
    generation: u32,
}

impl Realm {
    /// Creates a realm in the [`RealmState::New`] state.
    pub fn new(id: RealmId, rd: GranuleAddr, rtt_root: GranuleAddr, num_recs: u32) -> Realm {
        Realm {
            id,
            state: RealmState::New,
            rd,
            rtt: Rtt::new(rtt_root),
            recs: BTreeMap::new(),
            num_recs,
            rim: Measurement::ZERO,
            data_pages: 0,
            page_versions: BTreeMap::new(),
            dirty: DirtyBitmap::new(),
            tracking: false,
            generation: 0,
        }
    }

    /// Rebuilds a realm from a verified migration blob (the destination
    /// side of `RMI_MIGRATION_IMPORT`): born `Active` with the sealed
    /// measurement adopted as-is, page versions and vCPU contexts
    /// restored, and the migration generation bumped. The stage-2
    /// tables start empty — the importing RMM re-creates them from the
    /// granule run the host delegated.
    pub fn import(
        id: RealmId,
        rd: GranuleAddr,
        rtt_root: GranuleAddr,
        blob: &MigrationBlob,
    ) -> Realm {
        Realm {
            id,
            state: RealmState::Active,
            rd,
            rtt: Rtt::new(rtt_root),
            recs: blob.recs.iter().map(|f| (f.index, f.rec.clone())).collect(),
            num_recs: blob.num_recs,
            rim: blob.realm_measurement,
            data_pages: blob.frames.len() as u64,
            page_versions: blob.frames.iter().map(|f| (f.ipa, f.version)).collect(),
            dirty: DirtyBitmap::new(),
            tracking: false,
            generation: blob.generation + 1,
        }
    }

    /// The realm's identifier.
    pub fn id(&self) -> RealmId {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RealmState {
        self.state
    }

    /// The realm descriptor granule.
    pub fn rd(&self) -> GranuleAddr {
        self.rd
    }

    /// The declared number of vCPUs.
    pub fn num_recs(&self) -> u32 {
        self.num_recs
    }

    /// The realm initial measurement (sealed at activation).
    pub fn measurement(&self) -> Measurement {
        self.rim
    }

    /// Number of protected data pages currently mapped.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// Immutable access to the stage-2 tables.
    pub fn rtt(&self) -> &Rtt {
        &self.rtt
    }

    /// Mutable access to the stage-2 tables.
    pub fn rtt_mut(&mut self) -> &mut Rtt {
        &mut self.rtt
    }

    /// Extends the initial measurement with loaded content (only legal
    /// pre-activation; the caller enforces state).
    pub fn extend_measurement(&mut self, content: Measurement) {
        self.rim.extend(content);
    }

    /// Records a protected data page added/removed.
    pub fn add_data_page(&mut self) {
        self.data_pages += 1;
    }

    /// Records removal of a protected data page.
    pub fn remove_data_page(&mut self) {
        self.data_pages = self.data_pages.saturating_sub(1);
    }

    // ----- migration: page versions and dirty tracking -----

    /// Registers a protected data page at `ipa` (version 0). Called on
    /// `DATA_CREATE` alongside the RTT mapping.
    pub fn note_data_page(&mut self, ipa: u64) {
        self.page_versions.insert(ipa, 0);
        if self.tracking {
            self.dirty.set(ipa);
        }
    }

    /// Forgets the protected data page at `ipa` (`DATA_DESTROY`).
    pub fn forget_data_page(&mut self, ipa: u64) {
        self.page_versions.remove(&ipa);
        self.dirty.clear(ipa);
    }

    /// Records a guest write to the protected page at `ipa`: bumps its
    /// content version and, under dirty tracking, marks it dirty.
    /// Returns `false` if `ipa` is not a registered protected page.
    pub fn note_write(&mut self, ipa: u64) -> bool {
        match self.page_versions.get_mut(&ipa) {
            Some(v) => {
                *v += 1;
                if self.tracking {
                    self.dirty.set(ipa);
                }
                true
            }
            None => false,
        }
    }

    /// Starts dirty tracking with every protected page marked dirty
    /// (round 1 of a pre-copy migration transfers the whole image).
    pub fn start_dirty_tracking(&mut self) {
        self.tracking = true;
        for &ipa in self.page_versions.keys() {
            self.dirty.set(ipa);
        }
    }

    /// Stops dirty tracking and drops all dirty bits (migration
    /// completed or cancelled).
    pub fn stop_dirty_tracking(&mut self) {
        self.tracking = false;
        self.dirty.clear_all();
    }

    /// Is dirty tracking active?
    pub fn dirty_tracking(&self) -> bool {
        self.tracking
    }

    /// Number of currently dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Takes the current dirty set as copy frames (sorted by IPA),
    /// resetting it so writes during the copy land in the next round.
    pub fn take_dirty_frames(&mut self) -> Vec<GranuleFrame> {
        self.dirty
            .snapshot_and_reset()
            .into_iter()
            .map(|ipa| GranuleFrame {
                ipa,
                version: self.page_versions.get(&ipa).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Every protected data page as a frame (sorted by IPA) — the full
    /// image an export blob carries.
    pub fn all_frames(&self) -> Vec<GranuleFrame> {
        self.page_versions
            .iter()
            .map(|(&ipa, &version)| GranuleFrame { ipa, version })
            .collect()
    }

    /// How many times this realm has been imported onto a new node.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Activates the realm.
    ///
    /// Returns `false` if it was not in the [`RealmState::New`] state.
    pub fn activate(&mut self) -> bool {
        if self.state == RealmState::New {
            self.state = RealmState::Active;
            true
        } else {
            false
        }
    }

    /// Marks the realm destroyed.
    ///
    /// Returns `false` if RECs still exist.
    pub fn destroy(&mut self) -> bool {
        if self.recs.is_empty() {
            self.state = RealmState::Destroyed;
            true
        } else {
            false
        }
    }

    /// Adds a REC.
    ///
    /// Returns `false` if the index is out of range or already used, or
    /// the realm is not `New` (RECs are created before activation).
    pub fn add_rec(&mut self, index: u32, rec: Rec) -> bool {
        if self.state != RealmState::New || index >= self.num_recs || self.recs.contains_key(&index)
        {
            return false;
        }
        self.recs.insert(index, rec);
        true
    }

    /// Removes a REC, returning it.
    pub fn remove_rec(&mut self, index: u32) -> Option<Rec> {
        self.recs.remove(&index)
    }

    /// Immutable access to a REC.
    pub fn rec(&self, index: u32) -> Option<&Rec> {
        self.recs.get(&index)
    }

    /// Mutable access to a REC.
    pub fn rec_mut(&mut self, index: u32) -> Option<&mut Rec> {
        self.recs.get_mut(&index)
    }

    /// Number of live RECs.
    pub fn rec_count(&self) -> usize {
        self.recs.len()
    }

    /// Iterates over `(index, rec)`.
    pub fn recs(&self) -> impl Iterator<Item = (u32, &Rec)> {
        self.recs.iter().map(|(&i, r)| (i, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u64) -> GranuleAddr {
        GranuleAddr::new(n * 4096).unwrap()
    }

    fn realm() -> Realm {
        Realm::new(RealmId(1), g(1), g(2), 4)
    }

    #[test]
    fn lifecycle() {
        let mut r = realm();
        assert_eq!(r.state(), RealmState::New);
        assert!(r.add_rec(0, Rec::new()));
        assert!(r.activate());
        assert_eq!(r.state(), RealmState::Active);
        assert!(!r.activate());
        assert!(!r.destroy(), "cannot destroy with live RECs");
        r.remove_rec(0).unwrap();
        assert!(r.destroy());
        assert_eq!(r.state(), RealmState::Destroyed);
    }

    #[test]
    fn rec_creation_rules() {
        let mut r = realm();
        assert!(r.add_rec(0, Rec::new()));
        assert!(!r.add_rec(0, Rec::new()), "duplicate index");
        assert!(!r.add_rec(4, Rec::new()), "index out of range");
        r.activate();
        assert!(!r.add_rec(1, Rec::new()), "no RECs after activation");
        assert_eq!(r.rec_count(), 1);
    }

    #[test]
    fn measurement_extends() {
        let mut r = realm();
        let before = r.measurement();
        r.extend_measurement(Measurement::of(b"kernel page"));
        assert_ne!(r.measurement(), before);
    }

    #[test]
    fn dirty_tracking_rounds() {
        let mut r = realm();
        r.note_data_page(0x1000);
        r.note_data_page(0x2000);
        assert!(!r.dirty_tracking());
        assert!(r.note_write(0x1000), "untracked write still bumps version");
        assert_eq!(r.dirty_count(), 0);
        r.start_dirty_tracking();
        // Round 1: everything dirty.
        let round1 = r.take_dirty_frames();
        assert_eq!(
            round1.iter().map(|f| f.ipa).collect::<Vec<_>>(),
            vec![0x1000, 0x2000]
        );
        assert_eq!(round1[0].version, 1);
        // A write during the copy lands in the next round, with the
        // bumped version.
        assert!(r.note_write(0x2000));
        let round2 = r.take_dirty_frames();
        assert_eq!(round2.len(), 1);
        assert_eq!((round2[0].ipa, round2[0].version), (0x2000, 1));
        assert!(!r.note_write(0x9000), "unregistered page");
        r.note_write(0x1000);
        r.stop_dirty_tracking();
        assert_eq!(r.dirty_count(), 0);
        assert!(!r.dirty_tracking());
    }

    #[test]
    fn import_rebuilds_active_realm() {
        use crate::migrate::{GranuleFrame, MigrationBlob, RecFrame};
        let blob = MigrationBlob::sealed(
            Measurement::of(b"src realm"),
            Measurement::of(b"platform"),
            2,
            0,
            vec![GranuleFrame {
                ipa: 0x1000,
                version: 7,
            }],
            1,
            vec![
                RecFrame {
                    index: 0,
                    rec: Rec::new(),
                },
                RecFrame {
                    index: 1,
                    rec: Rec::new(),
                },
            ],
        );
        let r = Realm::import(RealmId(3), g(10), g(11), &blob);
        assert_eq!(r.state(), RealmState::Active);
        assert_eq!(r.measurement(), Measurement::of(b"src realm"));
        assert_eq!(r.generation(), 1);
        assert_eq!(r.rec_count(), 2);
        assert_eq!(r.data_pages(), 1);
        assert_eq!(r.all_frames(), blob.frames);
    }

    #[test]
    fn data_page_accounting() {
        let mut r = realm();
        r.add_data_page();
        r.add_data_page();
        r.remove_data_page();
        assert_eq!(r.data_pages(), 1);
        r.remove_data_page();
        r.remove_data_page(); // saturates
        assert_eq!(r.data_pages(), 0);
    }
}
