//! Realm descriptors: per-CVM state tracked by the RMM.

use std::collections::BTreeMap;
use std::fmt;

use cg_cca::Measurement;
use cg_machine::{GranuleAddr, RealmId};

use crate::rec::Rec;
use crate::rtt::Rtt;

/// Realm lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealmState {
    /// Created; memory may be loaded and measured; RECs may be created.
    New,
    /// Activated: the initial measurement is sealed and vCPUs may run.
    Active,
    /// Destruction in progress or complete.
    Destroyed,
}

impl fmt::Display for RealmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RealmState::New => "new",
            RealmState::Active => "active",
            RealmState::Destroyed => "destroyed",
        };
        f.write_str(s)
    }
}

/// One realm (confidential VM) as the RMM sees it.
#[derive(Debug)]
pub struct Realm {
    id: RealmId,
    state: RealmState,
    rd: GranuleAddr,
    rtt: Rtt,
    recs: BTreeMap<u32, Rec>,
    num_recs: u32,
    rim: Measurement,
    data_pages: u64,
}

impl Realm {
    /// Creates a realm in the [`RealmState::New`] state.
    pub fn new(id: RealmId, rd: GranuleAddr, rtt_root: GranuleAddr, num_recs: u32) -> Realm {
        Realm {
            id,
            state: RealmState::New,
            rd,
            rtt: Rtt::new(rtt_root),
            recs: BTreeMap::new(),
            num_recs,
            rim: Measurement::ZERO,
            data_pages: 0,
        }
    }

    /// The realm's identifier.
    pub fn id(&self) -> RealmId {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RealmState {
        self.state
    }

    /// The realm descriptor granule.
    pub fn rd(&self) -> GranuleAddr {
        self.rd
    }

    /// The declared number of vCPUs.
    pub fn num_recs(&self) -> u32 {
        self.num_recs
    }

    /// The realm initial measurement (sealed at activation).
    pub fn measurement(&self) -> Measurement {
        self.rim
    }

    /// Number of protected data pages currently mapped.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// Immutable access to the stage-2 tables.
    pub fn rtt(&self) -> &Rtt {
        &self.rtt
    }

    /// Mutable access to the stage-2 tables.
    pub fn rtt_mut(&mut self) -> &mut Rtt {
        &mut self.rtt
    }

    /// Extends the initial measurement with loaded content (only legal
    /// pre-activation; the caller enforces state).
    pub fn extend_measurement(&mut self, content: Measurement) {
        self.rim.extend(content);
    }

    /// Records a protected data page added/removed.
    pub fn add_data_page(&mut self) {
        self.data_pages += 1;
    }

    /// Records removal of a protected data page.
    pub fn remove_data_page(&mut self) {
        self.data_pages = self.data_pages.saturating_sub(1);
    }

    /// Activates the realm.
    ///
    /// Returns `false` if it was not in the [`RealmState::New`] state.
    pub fn activate(&mut self) -> bool {
        if self.state == RealmState::New {
            self.state = RealmState::Active;
            true
        } else {
            false
        }
    }

    /// Marks the realm destroyed.
    ///
    /// Returns `false` if RECs still exist.
    pub fn destroy(&mut self) -> bool {
        if self.recs.is_empty() {
            self.state = RealmState::Destroyed;
            true
        } else {
            false
        }
    }

    /// Adds a REC.
    ///
    /// Returns `false` if the index is out of range or already used, or
    /// the realm is not `New` (RECs are created before activation).
    pub fn add_rec(&mut self, index: u32, rec: Rec) -> bool {
        if self.state != RealmState::New || index >= self.num_recs || self.recs.contains_key(&index)
        {
            return false;
        }
        self.recs.insert(index, rec);
        true
    }

    /// Removes a REC, returning it.
    pub fn remove_rec(&mut self, index: u32) -> Option<Rec> {
        self.recs.remove(&index)
    }

    /// Immutable access to a REC.
    pub fn rec(&self, index: u32) -> Option<&Rec> {
        self.recs.get(&index)
    }

    /// Mutable access to a REC.
    pub fn rec_mut(&mut self, index: u32) -> Option<&mut Rec> {
        self.recs.get_mut(&index)
    }

    /// Number of live RECs.
    pub fn rec_count(&self) -> usize {
        self.recs.len()
    }

    /// Iterates over `(index, rec)`.
    pub fn recs(&self) -> impl Iterator<Item = (u32, &Rec)> {
        self.recs.iter().map(|(&i, r)| (i, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u64) -> GranuleAddr {
        GranuleAddr::new(n * 4096).unwrap()
    }

    fn realm() -> Realm {
        Realm::new(RealmId(1), g(1), g(2), 4)
    }

    #[test]
    fn lifecycle() {
        let mut r = realm();
        assert_eq!(r.state(), RealmState::New);
        assert!(r.add_rec(0, Rec::new()));
        assert!(r.activate());
        assert_eq!(r.state(), RealmState::Active);
        assert!(!r.activate());
        assert!(!r.destroy(), "cannot destroy with live RECs");
        r.remove_rec(0).unwrap();
        assert!(r.destroy());
        assert_eq!(r.state(), RealmState::Destroyed);
    }

    #[test]
    fn rec_creation_rules() {
        let mut r = realm();
        assert!(r.add_rec(0, Rec::new()));
        assert!(!r.add_rec(0, Rec::new()), "duplicate index");
        assert!(!r.add_rec(4, Rec::new()), "index out of range");
        r.activate();
        assert!(!r.add_rec(1, Rec::new()), "no RECs after activation");
        assert_eq!(r.rec_count(), 1);
    }

    #[test]
    fn measurement_extends() {
        let mut r = realm();
        let before = r.measurement();
        r.extend_measurement(Measurement::of(b"kernel page"));
        assert_ne!(r.measurement(), before);
    }

    #[test]
    fn data_page_accounting() {
        let mut r = realm();
        r.add_data_page();
        r.add_data_page();
        r.remove_data_page();
        assert_eq!(r.data_pages(), 1);
        r.remove_data_page();
        r.remove_data_page(); // saturates
        assert_eq!(r.data_pages(), 0);
    }
}
