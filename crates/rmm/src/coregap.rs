//! Core dedication and vCPU→core binding enforcement (paper §4.2).
//!
//! The crux of core gapping: (1) the host is told some cores are gone
//! (hotplug); (2) those cores are handed to the RMM and never returned
//! until the CVM using them terminates; (3) the RMM refuses to co-locate
//! two security contexts on one core. The binding is established lazily:
//! the first `REC_ENTER` of a vCPU on a dedicated core binds both ways —
//! that vCPU to that core, and that core to the vCPU's realm.

use std::collections::BTreeMap;
use std::fmt;

use cg_cca::RecId;
use cg_machine::{CoreId, RealmId};

/// Errors from dedication/binding operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreGapError {
    /// The core is not dedicated to the RMM.
    NotDedicated,
    /// The core is already dedicated.
    AlreadyDedicated,
    /// The vCPU is bound to a different core (the hypervisor tried to
    /// migrate it).
    WrongCore {
        /// The core the vCPU is bound to.
        bound: CoreId,
    },
    /// The core is bound to a different realm (the hypervisor tried to
    /// co-schedule distrusting CVMs).
    CoreBusy {
        /// The realm that owns the core.
        owner: RealmId,
    },
    /// The core still carries a realm binding and cannot be released.
    StillBound {
        /// The realm bound to the core.
        owner: RealmId,
    },
    /// The vCPU is mid-run; it must exit before its binding can change.
    RecRunning,
}

impl fmt::Display for CoreGapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreGapError::NotDedicated => write!(f, "core is not dedicated to the RMM"),
            CoreGapError::AlreadyDedicated => write!(f, "core is already dedicated"),
            CoreGapError::WrongCore { bound } => {
                write!(f, "vCPU is bound to {bound}")
            }
            CoreGapError::CoreBusy { owner } => {
                write!(f, "core is bound to {owner}")
            }
            CoreGapError::StillBound { owner } => {
                write!(f, "core still bound to {owner}")
            }
            CoreGapError::RecRunning => {
                write!(f, "vCPU is mid-run; it must exit before rebinding")
            }
        }
    }
}

impl std::error::Error for CoreGapError {}

/// The RMM's core-gapping state.
///
/// # Example
///
/// ```
/// use cg_cca::RecId;
/// use cg_machine::{CoreId, RealmId};
/// use cg_rmm::CoreGap;
///
/// let mut cg = CoreGap::new();
/// cg.dedicate(CoreId(4)).unwrap();
/// let rec = RecId::new(RealmId(0), 0);
/// // First entry binds; a second entry elsewhere fails.
/// cg.check_and_bind(rec, CoreId(4)).unwrap();
/// assert!(cg.check_and_bind(rec, CoreId(5)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreGap {
    /// Dedicated cores and the realm each is bound to (None = unbound).
    dedicated: BTreeMap<CoreId, Option<RealmId>>,
    /// vCPU → core bindings.
    bindings: BTreeMap<RecId, CoreId>,
}

impl CoreGap {
    /// Creates empty state (no cores dedicated).
    pub fn new() -> CoreGap {
        CoreGap::default()
    }

    /// Accepts a core handed over by the host's modified hotplug path.
    ///
    /// # Errors
    ///
    /// [`CoreGapError::AlreadyDedicated`] if it is already held.
    pub fn dedicate(&mut self, core: CoreId) -> Result<(), CoreGapError> {
        if self.dedicated.contains_key(&core) {
            return Err(CoreGapError::AlreadyDedicated);
        }
        self.dedicated.insert(core, None);
        Ok(())
    }

    /// Releases an *unbound* dedicated core back to the host.
    ///
    /// # Errors
    ///
    /// [`CoreGapError::NotDedicated`] if not held;
    /// [`CoreGapError::StillBound`] if a realm still owns it — the host
    /// cannot reclaim a CVM's core before the CVM is destroyed.
    pub fn release(&mut self, core: CoreId) -> Result<(), CoreGapError> {
        match self.dedicated.get(&core) {
            None => Err(CoreGapError::NotDedicated),
            Some(Some(owner)) => Err(CoreGapError::StillBound { owner: *owner }),
            Some(None) => {
                self.dedicated.remove(&core);
                Ok(())
            }
        }
    }

    /// Returns `true` if `core` is dedicated to the RMM.
    pub fn is_dedicated(&self, core: CoreId) -> bool {
        self.dedicated.contains_key(&core)
    }

    /// The realm bound to `core`, if any.
    pub fn core_owner(&self, core: CoreId) -> Option<RealmId> {
        self.dedicated.get(&core).copied().flatten()
    }

    /// The core `rec` is bound to, if any.
    pub fn binding(&self, rec: RecId) -> Option<CoreId> {
        self.bindings.get(&rec).copied()
    }

    /// Validates (and on first entry, establishes) the vCPU→core binding
    /// for a `REC_ENTER` on `core`.
    ///
    /// # Errors
    ///
    /// [`CoreGapError::NotDedicated`] if the host tries to run a vCPU on
    /// a core it did not hand over; [`CoreGapError::WrongCore`] if the
    /// vCPU is bound elsewhere; [`CoreGapError::CoreBusy`] if the core
    /// belongs to another realm.
    pub fn check_and_bind(&mut self, rec: RecId, core: CoreId) -> Result<(), CoreGapError> {
        if !self.dedicated.contains_key(&core) {
            return Err(CoreGapError::NotDedicated);
        }
        if let Some(bound) = self.binding(rec) {
            if bound != core {
                return Err(CoreGapError::WrongCore { bound });
            }
        }
        match self.core_owner(core) {
            Some(owner) if owner != rec.realm => {
                return Err(CoreGapError::CoreBusy { owner });
            }
            _ => {}
        }
        self.bindings.insert(rec, core);
        self.dedicated.insert(core, Some(rec.realm));
        Ok(())
    }

    /// Drops a vCPU's binding (on `REC_DESTROY`). When the last vCPU of a
    /// realm bound to a core goes away, the core returns to the unbound
    /// dedicated pool (and may then be released to the host).
    pub fn unbind(&mut self, rec: RecId) {
        if let Some(core) = self.bindings.remove(&rec) {
            let realm_still_bound = self
                .bindings
                .keys()
                .any(|r| r.realm == rec.realm && self.bindings.get(r) == Some(&core));
            if !realm_still_bound {
                if let Some(slot) = self.dedicated.get_mut(&core) {
                    *slot = None;
                }
            }
        }
    }

    /// All cores currently dedicated, in order.
    pub fn dedicated_cores(&self) -> Vec<CoreId> {
        self.dedicated.keys().copied().collect()
    }

    /// All vCPU bindings, in REC order.
    pub fn bindings_snapshot(&self) -> Vec<(RecId, CoreId)> {
        self.bindings.iter().map(|(&r, &c)| (r, c)).collect()
    }

    /// The core bound to another vCPU of the same realm, used by
    /// delegated IPI emulation to find the target vCPU's core.
    pub fn core_of(&self, rec: RecId) -> Option<CoreId> {
        self.binding(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(realm: u32, idx: u32) -> RecId {
        RecId::new(RealmId(realm), idx)
    }

    #[test]
    fn dedicate_release_lifecycle() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(1)).unwrap();
        assert!(cg.is_dedicated(CoreId(1)));
        assert_eq!(cg.dedicate(CoreId(1)), Err(CoreGapError::AlreadyDedicated));
        cg.release(CoreId(1)).unwrap();
        assert!(!cg.is_dedicated(CoreId(1)));
        assert_eq!(cg.release(CoreId(1)), Err(CoreGapError::NotDedicated));
    }

    #[test]
    fn first_entry_binds_both_ways() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        assert_eq!(cg.binding(rec(7, 0)), Some(CoreId(2)));
        assert_eq!(cg.core_owner(CoreId(2)), Some(RealmId(7)));
    }

    #[test]
    fn migration_attempt_fails() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.dedicate(CoreId(3)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        assert_eq!(
            cg.check_and_bind(rec(7, 0), CoreId(3)),
            Err(CoreGapError::WrongCore { bound: CoreId(2) })
        );
        // Re-entry on the right core keeps working.
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
    }

    #[test]
    fn co_scheduling_two_realms_fails() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        assert_eq!(
            cg.check_and_bind(rec(8, 0), CoreId(2)),
            Err(CoreGapError::CoreBusy { owner: RealmId(7) })
        );
    }

    #[test]
    fn same_realm_second_vcpu_on_same_core_binds_core_once() {
        // Two vCPUs of the same realm may not share a core in practice
        // (the host gives each its own), but the *realm* owning the core
        // does not forbid it architecturally — the run call for a vCPU
        // bound elsewhere is what fails. Here vCPU 1 was never bound, so
        // entering it on realm-owned core 2 succeeds and binds it there.
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 1), CoreId(2)).unwrap();
        assert_eq!(cg.binding(rec(7, 1)), Some(CoreId(2)));
    }

    #[test]
    fn entry_on_non_dedicated_core_fails() {
        let mut cg = CoreGap::new();
        assert_eq!(
            cg.check_and_bind(rec(1, 0), CoreId(0)),
            Err(CoreGapError::NotDedicated)
        );
    }

    #[test]
    fn release_refused_while_bound_then_allowed() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        assert_eq!(
            cg.release(CoreId(2)),
            Err(CoreGapError::StillBound { owner: RealmId(7) })
        );
        cg.unbind(rec(7, 0));
        assert_eq!(cg.core_owner(CoreId(2)), None);
        cg.release(CoreId(2)).unwrap();
    }

    #[test]
    fn unbind_keeps_core_owned_while_sibling_bound() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 0), CoreId(2)).unwrap();
        cg.check_and_bind(rec(7, 1), CoreId(2)).unwrap();
        cg.unbind(rec(7, 0));
        assert_eq!(cg.core_owner(CoreId(2)), Some(RealmId(7)));
        cg.unbind(rec(7, 1));
        assert_eq!(cg.core_owner(CoreId(2)), None);
    }

    #[test]
    fn snapshots() {
        let mut cg = CoreGap::new();
        cg.dedicate(CoreId(1)).unwrap();
        cg.dedicate(CoreId(2)).unwrap();
        cg.check_and_bind(rec(1, 0), CoreId(1)).unwrap();
        assert_eq!(cg.dedicated_cores(), vec![CoreId(1), CoreId(2)]);
        assert_eq!(cg.bindings_snapshot(), vec![(rec(1, 0), CoreId(1))]);
        assert_eq!(cg.core_of(rec(1, 0)), Some(CoreId(1)));
    }
}
