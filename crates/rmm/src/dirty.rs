//! Dirty-granule tracking for live migration.
//!
//! During a pre-copy migration the RMM tracks which protected granules
//! the guest writes while earlier rounds are in flight. Each round the
//! host (via the migration driver) snapshots the dirty set and resets
//! it; writes landing *during* a copy round accumulate in the live set
//! and are returned by the **next** snapshot, which is what makes the
//! iterative rounds converge (or provably not, forcing stop-and-copy).
//!
//! The set is backed by a `BTreeSet` so every enumeration is sorted by
//! IPA — a requirement for the deterministic, fingerprint-stable
//! simulation (the realm's stage-2 leaf map iterates in hash order and
//! must never drive migration traffic directly).

use std::collections::BTreeSet;

/// A set of dirty protected-granule IPAs, snapshot-and-reset style.
#[derive(Debug, Clone, Default)]
pub struct DirtyBitmap {
    live: BTreeSet<u64>,
}

impl DirtyBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> DirtyBitmap {
        DirtyBitmap::default()
    }

    /// Marks `ipa` dirty. Returns `true` if it was newly set.
    pub fn set(&mut self, ipa: u64) -> bool {
        self.live.insert(ipa)
    }

    /// Clears `ipa`. Returns `true` if it was set.
    pub fn clear(&mut self, ipa: u64) -> bool {
        self.live.remove(&ipa)
    }

    /// Is `ipa` currently dirty?
    pub fn is_set(&self, ipa: u64) -> bool {
        self.live.contains(&ipa)
    }

    /// Number of dirty granules.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Takes the current dirty set (sorted ascending by IPA), leaving
    /// the bitmap empty. Writes recorded after this call land in the
    /// fresh set and surface in the *next* snapshot.
    pub fn snapshot_and_reset(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.live).into_iter().collect()
    }

    /// Drops all dirty bits (migration cancelled or completed).
    pub fn clear_all(&mut self) {
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_query() {
        let mut b = DirtyBitmap::new();
        assert!(b.is_empty());
        assert!(b.set(0x1000));
        assert!(!b.set(0x1000), "second set is a no-op");
        assert!(b.is_set(0x1000));
        assert_eq!(b.len(), 1);
        assert!(b.clear(0x1000));
        assert!(!b.clear(0x1000));
        assert!(b.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_resets() {
        let mut b = DirtyBitmap::new();
        for ipa in [0x5000u64, 0x1000, 0x3000] {
            b.set(ipa);
        }
        assert_eq!(b.snapshot_and_reset(), vec![0x1000, 0x3000, 0x5000]);
        assert!(b.is_empty());
        assert_eq!(b.snapshot_and_reset(), Vec::<u64>::new());
    }

    #[test]
    fn write_during_round_lands_in_next_snapshot() {
        let mut b = DirtyBitmap::new();
        b.set(0x1000);
        let round1 = b.snapshot_and_reset();
        // The guest dirties a page while round 1 is being copied.
        b.set(0x2000);
        assert_eq!(round1, vec![0x1000]);
        assert_eq!(b.snapshot_and_reset(), vec![0x2000]);
    }
}
