//! The RMM proper: RMI command handling and guest-event dispositions.

use cg_cca::{Measurement, RecExit, RecExitReason, RecId, RmiCall, RmiStatus};
use cg_ivc::{ChannelConfig, PairPolicy, IVC_WINDOW_GRANULES};
use cg_machine::{CoreId, Domain, GranuleAddr, GranuleState, IntId, Machine, RealmId};
use cg_sim::{Counters, SimDuration, SimTime};

use crate::coregap::{CoreGap, CoreGapError};
use crate::interrupts::DelegationConfig;
use crate::migrate::{GranuleFrame, MigrationBlob, RecFrame};
use crate::realm::{Realm, RealmState};
use crate::rec::{Rec, RecState};
use crate::rtt::{ipa_is_unprotected, Rtt, RttError};

/// The SGI number the RMM uses as its realm-to-realm doorbell on
/// dedicated cores (delegated IPI transport). Distinct from the host's
/// CVM-exit doorbell, which lives in the host's SGI allocation.
pub const REALM_DOORBELL_SGI: IntId = IntId::sgi(14);

/// Per-operation monitor work costs (time spent in RMM code, excluding
/// architectural transition costs which come from
/// [`cg_machine::HwParams`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RmmCosts {
    /// Trivial queries (RMI_VERSION).
    pub query: SimDuration,
    /// Granule delegation: GPT update plus cache/TLB maintenance.
    pub granule: SimDuration,
    /// Realm/REC object creation or destruction.
    pub object: SimDuration,
    /// RTT manipulation (table create, map, unmap).
    pub rtt_op: SimDuration,
    /// Bookkeeping on the REC-enter path beyond context restore.
    pub enter_extra: SimDuration,
    /// Bookkeeping on the exit path beyond context save (exit-record
    /// construction, list-register sync).
    pub exit_extra: SimDuration,
}

impl Default for RmmCosts {
    fn default() -> RmmCosts {
        RmmCosts {
            query: SimDuration::nanos(40),
            granule: SimDuration::nanos(450),
            object: SimDuration::nanos(700),
            rtt_op: SimDuration::nanos(400),
            enter_extra: SimDuration::nanos(250),
            exit_extra: SimDuration::nanos(250),
        }
    }
}

/// RMM configuration: which of the paper's mechanisms are active.
#[derive(Debug, Clone, PartialEq)]
pub struct RmmConfig {
    /// Enforce core gapping (dedicated cores, bindings, remote exits).
    /// When `false` the RMM behaves like the baseline shared-core RMM.
    pub core_gapping: bool,
    /// Interrupt delegation configuration (§4.4).
    pub delegation: DelegationConfig,
    /// Direct device-interrupt delivery (the §5.3 extension the
    /// prototype lacks): SPIs routed to a dedicated core are injected
    /// locally by the RMM instead of exiting to the host.
    pub direct_device_delivery: bool,
    /// Monitor work costs.
    pub costs: RmmCosts,
}

impl RmmConfig {
    /// The paper's full core-gapped configuration.
    pub fn core_gapped() -> RmmConfig {
        RmmConfig {
            core_gapping: true,
            delegation: DelegationConfig::FULL,
            direct_device_delivery: false,
            costs: RmmCosts::default(),
        }
    }

    /// Core gapping with the direct device-interrupt delivery extension
    /// (§5.3: "Direct interrupt delivery could be supported through
    /// further changes to KVM and RMM").
    pub fn core_gapped_direct_delivery() -> RmmConfig {
        RmmConfig {
            direct_device_delivery: true,
            ..RmmConfig::core_gapped()
        }
    }

    /// Core gapping without interrupt delegation (the ablation in
    /// table 4 / fig. 6).
    pub fn core_gapped_no_delegation() -> RmmConfig {
        RmmConfig {
            core_gapping: true,
            delegation: DelegationConfig::NONE,
            direct_device_delivery: false,
            costs: RmmCosts::default(),
        }
    }

    /// Baseline shared-core RMM (confidential VM without core gapping).
    pub fn shared_core() -> RmmConfig {
        RmmConfig {
            core_gapping: false,
            delegation: DelegationConfig::NONE,
            direct_device_delivery: false,
            costs: RmmCosts::default(),
        }
    }
}

impl Default for RmmConfig {
    fn default() -> RmmConfig {
        RmmConfig::core_gapped()
    }
}

/// Result of an RMI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmiOutcome {
    /// Status code returned to the host.
    pub status: RmiStatus,
    /// Monitor time consumed handling the call.
    pub cost: SimDuration,
    /// For `REC_ENTER` with `Success`: the guest is now running on the
    /// handling core and the caller must drive its execution.
    pub entered: Option<RecId>,
}

impl RmiOutcome {
    fn fail(status: RmiStatus, cost: SimDuration) -> RmiOutcome {
        RmiOutcome {
            status,
            cost,
            entered: None,
        }
    }

    fn ok(cost: SimDuration) -> RmiOutcome {
        RmiOutcome {
            status: RmiStatus::Success,
            cost,
            entered: None,
        }
    }
}

/// An architectural event raised while a guest vCPU executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestEvent {
    /// The guest programmed its virtual timer (CNTV_CVAL/CTL write).
    TimerProgram {
        /// Requested expiry time.
        deadline: SimTime,
    },
    /// The guest disarmed its virtual timer.
    TimerCancel,
    /// The guest sent a virtual IPI (ICC_SGI1R write).
    SendIpi {
        /// Target vCPU index within the same realm.
        target_index: u32,
        /// SGI number (0–15).
        sgi: u32,
    },
    /// The guest executed WFI.
    Wfi,
    /// Emulated MMIO read.
    MmioRead {
        /// Guest physical address.
        ipa: u64,
        /// Access size in bytes.
        size: u8,
    },
    /// Emulated MMIO write.
    MmioWrite {
        /// Guest physical address.
        ipa: u64,
        /// Access size in bytes.
        size: u8,
        /// Value written.
        value: u64,
    },
    /// Explicit hypercall to the host.
    HostCall {
        /// Hypercall immediate.
        imm: u32,
    },
    /// Stage-2 fault (unmapped IPA).
    Stage2Fault {
        /// Faulting address.
        ipa: u64,
    },
    /// The vCPU powered itself off.
    Shutdown,
    /// A physical interrupt arrived at the core while the guest ran.
    PhysIrq {
        /// The physical INTID taken by the RMM.
        intid: IntId,
    },
}

/// What happens after the RMM handles a guest event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Handled locally; the guest resumes on the same core after `cost`.
    Resume {
        /// Time consumed by trap handling.
        cost: SimDuration,
    },
    /// Handled locally; additionally a physical IPI must be sent to
    /// `target_core` (delegated cross-vCPU IPI).
    ResumeWithIpi {
        /// The dedicated core of the target vCPU.
        target_core: CoreId,
        /// Time consumed on the sending core.
        cost: SimDuration,
    },
    /// The guest is idle in WFI with nothing pending; the core waits in
    /// the RMM until an interrupt arrives (core-gapped mode only — the
    /// core is dedicated, so there is nothing else to run).
    Idle {
        /// Time consumed before idling.
        cost: SimDuration,
    },
    /// The host must service this exit; the REC has been saved and the
    /// exit record is ready for transport (RPC under core gapping, world
    /// switch otherwise).
    ExitToHost {
        /// The exit record for the host.
        exit: RecExit,
        /// Time consumed saving context and building the record.
        cost: SimDuration,
    },
}

/// A registered inter-CVM channel: the host-provided configuration plus
/// the two endpoint vCPUs (vCPU 0 of each paired realm). Doorbell SPIs
/// arriving anywhere else are forged or misrouted and are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IvcChannelReg {
    cfg: ChannelConfig,
    a: RecId,
    b: RecId,
}

impl IvcChannelReg {
    /// The IPA both realms see granule `i` of the shared window at: the
    /// window's physical address aliased into the unprotected half.
    fn window_ipa(&self, i: u64) -> u64 {
        crate::rtt::UNPROTECTED_BIT | self.cfg.window.offset(i).as_u64()
    }
}

/// The realm management monitor.
///
/// # Example
///
/// ```
/// use cg_cca::{RmiCall, RmiStatus};
/// use cg_machine::{CoreId, GranuleAddr, HwParams, Machine};
/// use cg_rmm::{Rmm, RmmConfig};
///
/// let mut rmm = Rmm::new(RmmConfig::core_gapped());
/// let mut machine = Machine::new(HwParams::small()).unwrap();
/// let out = rmm.handle_rmi(CoreId(0), RmiCall::Version, &mut machine);
/// assert_eq!(out.status, RmiStatus::Success);
/// // Delegating a granule makes it inaccessible to the host.
/// let g = GranuleAddr::new(0x10_0000).unwrap();
/// let out = rmm.handle_rmi(CoreId(0), RmiCall::GranuleDelegate { addr: g }, &mut machine);
/// assert!(out.status.is_success());
/// assert!(machine.memory().check_access(cg_machine::Domain::Host, g).is_err());
/// ```
#[derive(Debug)]
pub struct Rmm {
    config: RmmConfig,
    realms: Vec<Option<Realm>>,
    coregap: CoreGap,
    platform_measurement: Measurement,
    /// SPIs registered for local injection (fast-path completion
    /// interrupts): delegated like the timer and IPIs, independent of
    /// the blanket `direct_device_delivery` extension.
    delegated_spis: std::collections::BTreeSet<u32>,
    /// Which measurement pairs the realm owners have authorised to share
    /// an inter-CVM channel; `IVC_CHANNEL_CREATE` is refused for any
    /// pair not on this list.
    ivc_policy: PairPolicy,
    /// Registered inter-CVM channels: config plus the two owner vCPUs
    /// whose cores may legitimately receive the channel's doorbell SPI.
    ivc_channels: Vec<IvcChannelReg>,
    /// A sealed blob produced by `MIGRATION_EXPORT`, awaiting pickup by
    /// the host's migration driver (the out-of-band bulk transport).
    migration_outbox: Option<MigrationBlob>,
    /// A blob the host staged for the next `MIGRATION_IMPORT`.
    staged_import: Option<MigrationBlob>,
    counters: Counters,
    /// Structured trace sink, handed to each REC's virtual GIC
    /// (disabled by default).
    trace: cg_sim::TraceHandle,
    /// Span profiler sink (disabled by default); delegated timer fires
    /// record spans covering the in-realm handling cost.
    profiler: cg_sim::Profiler,
}

impl Rmm {
    /// Creates an RMM with the given configuration.
    pub fn new(config: RmmConfig) -> Rmm {
        let image = if config.core_gapping {
            Measurement::of(b"cg-rmm core-gapped v0.3.0+cg")
        } else {
            Measurement::of(b"cg-rmm baseline v0.3.0")
        };
        Rmm {
            config,
            realms: Vec::new(),
            coregap: CoreGap::new(),
            platform_measurement: image,
            delegated_spis: std::collections::BTreeSet::new(),
            ivc_policy: PairPolicy::new(),
            ivc_channels: Vec::new(),
            migration_outbox: None,
            staged_import: None,
            counters: Counters::new(),
            trace: cg_sim::TraceHandle::disabled(),
            profiler: cg_sim::Profiler::disabled(),
        }
    }

    /// Attaches a span profiler; delegated timer fires are recorded
    /// through it from then on.
    pub fn set_profiler(&mut self, profiler: cg_sim::Profiler) {
        self.profiler = profiler;
    }

    /// Attaches a structured trace, propagating it to every existing
    /// REC's virtual interrupt state; RECs created later inherit it.
    pub fn set_trace(&mut self, trace: cg_sim::TraceHandle) {
        self.trace = trace;
        let ids: Vec<RecId> = self
            .realms
            .iter()
            .flatten()
            .flat_map(|r| {
                let realm = r.id();
                r.recs().map(move |(i, _)| RecId::new(realm, i))
            })
            .collect();
        for id in ids {
            let trace = self.trace.clone();
            if let Some(rec) = self.rec_mut(id) {
                rec.vgic_mut().set_trace(trace, id.realm.0, id.index);
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RmmConfig {
        &self.config
    }

    /// Registers `spi` for delegated (local, exit-free) injection: the
    /// host nominates a fast-path device's completion interrupt at
    /// setup, and the RMM thereafter injects it into the bound realm's
    /// vGIC without a host round-trip.
    pub fn delegate_spi(&mut self, spi: u32) {
        if self.delegated_spis.insert(IntId::spi(spi).0) {
            self.counters.incr("rmm.delegated.spi_registered");
        }
    }

    /// Removes `spi` from the delegated set — the teardown mirror of
    /// [`Rmm::delegate_spi`], called when the device or channel that
    /// owned the interrupt is destroyed so a later tenant of the same
    /// SPI number starts from a clean slate.
    pub fn undelegate_spi(&mut self, spi: u32) {
        if self.delegated_spis.remove(&IntId::spi(spi).0) {
            self.counters.incr("rmm.delegated.spi_unregistered");
        }
    }

    /// Is `intid` a locally injected (delegated or direct-delivery) SPI?
    fn spi_delegated(&self, intid: IntId) -> bool {
        intid.is_spi()
            && (self.config.direct_device_delivery || self.delegated_spis.contains(&intid.0))
    }

    // ----- inter-CVM channels (IVC) -----

    /// Authorises the measurement pair `(a, b)` for inter-CVM channel
    /// creation. In a real deployment this policy arrives signed by the
    /// realm owners; the model takes it directly.
    pub fn allow_ivc_pair(&mut self, a: Measurement, b: Measurement) {
        self.ivc_policy.allow(a, b);
        self.counters.incr("rmm.ivc.pairs_allowed");
    }

    /// The approved IVC measurement pairs, canonical order. A migration
    /// driver mirrors these onto the destination node so a migrated
    /// CVM's channels pass the same pair policy after the move.
    pub fn ivc_pairs(&self) -> Vec<(Measurement, Measurement)> {
        self.ivc_policy.pairs().collect()
    }

    /// The configuration of a registered IVC channel, if any.
    pub fn ivc_channel(&self, channel: u32) -> Option<ChannelConfig> {
        self.ivc_channels
            .iter()
            .find(|c| c.cfg.channel == channel)
            .map(|c| c.cfg)
    }

    /// The endpoint vCPUs of a registered IVC channel, if any.
    pub fn ivc_channel_endpoints(&self, channel: u32) -> Option<(RecId, RecId)> {
        self.ivc_channels
            .iter()
            .find(|c| c.cfg.channel == channel)
            .map(|c| (c.a, c.b))
    }

    /// The registered IVC channel owning doorbell SPI `intid`, if any.
    fn ivc_channel_for_spi(&self, intid: IntId) -> Option<IvcChannelReg> {
        if !intid.is_spi() {
            return None;
        }
        self.ivc_channels
            .iter()
            .find(|c| IntId::spi(c.cfg.spi) == intid)
            .copied()
    }

    /// The measured RMM image (goes into attestation tokens).
    pub fn platform_measurement(&self) -> Measurement {
        self.platform_measurement
    }

    /// Core-gapping state (dedications and bindings).
    pub fn coregap(&self) -> &CoreGap {
        &self.coregap
    }

    /// Event counters (exits by cause, delegated operations, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// A run-channel response was re-posted because the client's call
    /// timeout fired with the response already written (the doorbell was
    /// lost or delayed). Re-posting is idempotent — the exit record is
    /// unchanged, only its visibility is refreshed — so the RMM merely
    /// counts the recovery for diagnostics.
    pub fn note_response_repost(&mut self) {
        self.counters.incr("rmm.response_reposts");
    }

    /// Number of realm slots ever created — the id the next
    /// `RMI_REALM_CREATE` will assign.
    pub fn realm_count(&self) -> u32 {
        self.realms.len() as u32
    }

    /// Immutable access to a realm.
    pub fn realm(&self, id: RealmId) -> Option<&Realm> {
        self.realms.get(id.index()).and_then(|r| r.as_ref())
    }

    fn realm_mut(&mut self, id: RealmId) -> Option<&mut Realm> {
        self.realms.get_mut(id.index()).and_then(|r| r.as_mut())
    }

    /// Immutable access to a REC.
    pub fn rec(&self, id: RecId) -> Option<&Rec> {
        self.realm(id.realm).and_then(|r| r.rec(id.index))
    }

    fn rec_mut(&mut self, id: RecId) -> Option<&mut Rec> {
        self.realm_mut(id.realm).and_then(|r| r.rec_mut(id.index))
    }

    // ----- core dedication (host hotplug handover) -----

    /// Accepts a core the host's hotplug path handed over
    /// (`CORE_DEDICATE`).
    ///
    /// # Errors
    ///
    /// Forwards [`CoreGapError`] on double dedication.
    pub fn dedicate_core(
        &mut self,
        core: CoreId,
        machine: &mut Machine,
    ) -> Result<(), CoreGapError> {
        self.coregap.dedicate(core)?;
        machine.cpu_mut(core).dedicate_to_rmm();
        self.counters.incr("rmm.core_dedicated");
        Ok(())
    }

    /// Releases an unbound dedicated core back to the host
    /// (`CORE_RECLAIM`).
    ///
    /// # Errors
    ///
    /// Forwards [`CoreGapError`] if the core is bound or not dedicated.
    pub fn reclaim_core(
        &mut self,
        core: CoreId,
        machine: &mut Machine,
    ) -> Result<(), CoreGapError> {
        self.coregap.release(core)?;
        machine.cpu_mut(core).unbind_realm();
        machine.cpu_mut(core).online();
        self.counters.incr("rmm.core_reclaimed");
        Ok(())
    }

    /// Moves `rec`'s vCPU→core binding to `to` (`REC_REBIND`): the
    /// live-rebind primitive behind elastic reallocation. The target
    /// must already be dedicated and either unbound or owned by the
    /// same realm; the vCPU must not be mid-run (it exits first — the
    /// host kicks it out). Equivalent to a REC binding teardown plus a
    /// fresh first-entry bind, so the monitor cost is two object
    /// operations; the architectural transition costs ride the next
    /// `REC_ENTER` as usual.
    ///
    /// # Errors
    ///
    /// [`CoreGapError::RecRunning`] while a run call is outstanding;
    /// [`CoreGapError::NotDedicated`] / [`CoreGapError::CoreBusy`] when
    /// the target core is not rebind-eligible.
    pub fn rebind_rec(
        &mut self,
        rec: RecId,
        to: CoreId,
        machine: &mut Machine,
    ) -> Result<SimDuration, CoreGapError> {
        if self.rec(rec).map(|r| r.state()) == Some(RecState::Running) {
            return Err(CoreGapError::RecRunning);
        }
        if !self.coregap.is_dedicated(to) {
            return Err(CoreGapError::NotDedicated);
        }
        if let Some(owner) = self.coregap.core_owner(to) {
            if owner != rec.realm {
                return Err(CoreGapError::CoreBusy { owner });
            }
        }
        let old = self.coregap.binding(rec);
        self.coregap.unbind(rec);
        if let Some(core) = old {
            if self.coregap.core_owner(core).is_none() {
                machine.cpu_mut(core).unbind_realm();
            }
        }
        self.coregap
            .check_and_bind(rec, to)
            .expect("target validated rebind-eligible above");
        machine.cpu_mut(to).bind_realm(rec.realm);
        self.counters.incr("rmm.rec_rebound");
        Ok(self.config.costs.object * 2)
    }

    /// Drops `rec`'s vCPU→core binding without destroying the REC
    /// (scale-down: the core is reclaimed, the REC lies dormant until a
    /// scale-up re-enters it on a fresh core). Returns the core the
    /// vCPU was bound to, or `None` if it was never bound.
    pub fn unbind_rec(&mut self, rec: RecId, machine: &mut Machine) -> Option<CoreId> {
        let core = self.coregap.binding(rec)?;
        self.coregap.unbind(rec);
        if self.coregap.core_owner(core).is_none() {
            machine.cpu_mut(core).unbind_realm();
        }
        self.counters.incr("rmm.rec_unbound");
        Some(core)
    }

    // ----- RMI handling -----

    /// Handles an RMI call arriving on `core` (via SMC in shared-core
    /// mode, via RPC in core-gapped mode — the transport cost is charged
    /// by the caller; `cost` here is monitor work only).
    pub fn handle_rmi(&mut self, core: CoreId, call: RmiCall, machine: &mut Machine) -> RmiOutcome {
        let costs = self.config.costs.clone();
        self.counters.incr(&format!("rmi.{:#04x}", call.opcode()));
        match call {
            RmiCall::Version => RmiOutcome::ok(costs.query),
            RmiCall::GranuleDelegate { addr } => match machine.memory_mut().delegate(addr) {
                Ok(()) => RmiOutcome::ok(costs.granule),
                Err(_) => RmiOutcome::fail(RmiStatus::ErrorGranule, costs.granule),
            },
            RmiCall::GranuleUndelegate { addr } => match machine.memory_mut().undelegate(addr) {
                Ok(()) => RmiOutcome::ok(costs.granule),
                Err(_) => RmiOutcome::fail(RmiStatus::ErrorGranule, costs.granule),
            },
            RmiCall::RealmCreate { rd, num_recs } => {
                self.realm_create(rd, num_recs, machine, costs)
            }
            RmiCall::RealmActivate { realm } => {
                if self.realm_mut(realm).is_some_and(|r| r.activate()) {
                    RmiOutcome::ok(costs.object)
                } else {
                    RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object)
                }
            }
            RmiCall::RealmDestroy { realm } => self.realm_destroy(realm, machine, costs),
            RmiCall::RecCreate { realm, index, rec } => {
                self.rec_create(realm, index, rec, machine, costs)
            }
            RmiCall::RecDestroy { rec } => self.rec_destroy(rec, machine, costs),
            RmiCall::DataCreate { realm, data, ipa } => {
                self.data_create(realm, data, ipa, machine, costs)
            }
            RmiCall::DataDestroy { realm, ipa } => self.data_destroy(realm, ipa, machine, costs),
            RmiCall::RttCreate {
                realm,
                rtt,
                ipa,
                level,
            } => self.rtt_create(realm, rtt, ipa, level, machine, costs),
            RmiCall::RttMapUnprotected { realm, ipa, addr } => {
                self.rtt_map_unprotected(realm, ipa, addr, machine, costs)
            }
            RmiCall::RttUnmapUnprotected { realm, ipa } => match self.realm_mut(realm) {
                Some(r) => match r.rtt_mut().unmap(ipa) {
                    Ok(_) => RmiOutcome::ok(costs.rtt_op),
                    Err(_) => RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op),
                },
                None => RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op),
            },
            RmiCall::RecEnter { rec, .. } => self.rec_enter(core, rec, machine, costs),
            RmiCall::IvcChannelCreate {
                channel,
                realm_a,
                realm_b,
                window,
                spi,
            } => self.ivc_channel_create(channel, realm_a, realm_b, window, spi, machine, costs),
            RmiCall::IvcChannelDestroy { channel } => self.ivc_channel_destroy(channel, costs),
            RmiCall::MigrationExport { realm } => self.migration_export(realm, costs),
            RmiCall::MigrationImport { rd, src_lo, src_hi } => {
                self.migration_import(rd, Measurement([src_lo, src_hi]), machine, costs)
            }
        }
    }

    // ----- live migration (cg-migrate) -----

    /// Starts dirty tracking on `realm` for a pre-copy migration: every
    /// protected page is marked dirty (round 1 transfers the full
    /// image), and subsequent tracked guest writes re-dirty pages.
    /// Returns `false` if the realm doesn't exist or isn't active.
    pub fn migration_begin(&mut self, realm: RealmId) -> bool {
        match self.realm_mut(realm) {
            Some(r) if r.state() == RealmState::Active => {
                r.start_dirty_tracking();
                self.counters.incr("rmm.migrate.begin");
                true
            }
            _ => false,
        }
    }

    /// Cuts one pre-copy round: takes the realm's dirty set (sorted by
    /// IPA) and resets it, so writes during the copy land in the next
    /// round. Returns `None` if the realm isn't under dirty tracking.
    pub fn migration_round(&mut self, realm: RealmId) -> Option<Vec<GranuleFrame>> {
        let r = self.realm_mut(realm)?;
        if !r.dirty_tracking() {
            return None;
        }
        let frames = r.take_dirty_frames();
        self.counters.incr("rmm.migrate.rounds");
        Some(frames)
    }

    /// Number of pages currently dirty on `realm` (0 if unknown).
    pub fn migration_dirty_count(&self, realm: RealmId) -> usize {
        self.realm(realm).map_or(0, |r| r.dirty_count())
    }

    /// Abandons an in-progress migration: stops dirty tracking and
    /// discards any exported blob, leaving the realm to keep running on
    /// this node as if the migration never started.
    pub fn migration_cancel(&mut self, realm: RealmId) {
        if let Some(r) = self.realm_mut(realm) {
            r.stop_dirty_tracking();
        }
        self.migration_outbox = None;
        self.counters.incr("rmm.migrate.cancelled");
    }

    /// Records a guest write to protected page `ipa` of `realm` (the
    /// execution layer calls this for write-classified guest work so
    /// dirty tracking sees it).
    pub fn note_guest_write(&mut self, realm: RealmId, ipa: u64) {
        if let Some(r) = self.realm_mut(realm) {
            r.note_write(ipa);
        }
    }

    /// Hands the host the blob a `MIGRATION_EXPORT` sealed — the bulk
    /// payload travelling the inter-node link out of band.
    pub fn take_migration_blob(&mut self) -> Option<MigrationBlob> {
        self.migration_outbox.take()
    }

    /// Stages an inbound blob for the next `MIGRATION_IMPORT` (the
    /// destination host has finished receiving it from the link).
    pub fn stage_migration_blob(&mut self, blob: MigrationBlob) {
        self.staged_import = Some(blob);
    }

    /// `RMI_MIGRATION_EXPORT`: seals a quiesced, dirty-tracked realm
    /// into a migration blob. Every REC must have exited (the host's
    /// stop-and-copy quiesce) and `migration_begin` must have run; the
    /// realm itself is left intact so the host can abort and resume it
    /// locally if the destination rejects the import.
    fn migration_export(&mut self, realm_id: RealmId, costs: RmmCosts) -> RmiOutcome {
        let Some(r) = self.realm(realm_id) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        };
        if r.state() != RealmState::Active || !r.dirty_tracking() {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        }
        if r.recs().any(|(_, rec)| rec.state() == RecState::Running) {
            return RmiOutcome::fail(RmiStatus::ErrorInUse, costs.object);
        }
        let platform = self.platform_measurement;
        let r = self.realm_mut(realm_id).expect("checked above");
        let delta = r.dirty_count() as u64;
        let frames = r.all_frames();
        let recs: Vec<RecFrame> = r
            .recs()
            .map(|(index, rec)| RecFrame {
                index,
                rec: rec.clone(),
            })
            .collect();
        let blob = MigrationBlob::sealed(
            r.measurement(),
            platform,
            r.num_recs(),
            r.generation(),
            frames,
            delta,
            recs,
        );
        r.stop_dirty_tracking();
        self.migration_outbox = Some(blob);
        self.counters.incr("rmm.migrate.exports");
        RmiOutcome::ok(costs.object * 2)
    }

    /// `RMI_MIGRATION_IMPORT`: rebuilds a realm from the staged blob.
    /// The seal must verify and the sealed realm measurement must equal
    /// `expected` (the owner-supplied source measurement) — a mismatch
    /// is audited and rejected with [`RmiStatus::ErrorMeasurement`],
    /// leaving no realm state behind. On success the realm comes up
    /// `Active` under a fresh id, claiming a contiguous delegated
    /// granule run starting at `rd` (rd, RTT root, then RTT tables,
    /// data pages, and REC granules in walk order).
    fn migration_import(
        &mut self,
        rd: GranuleAddr,
        expected: Measurement,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let Some(blob) = self.staged_import.take() else {
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        };
        if !blob.verify_seal() || blob.realm_measurement != expected {
            self.counters.incr("rmm.migrate.import_rejected");
            return RmiOutcome::fail(RmiStatus::ErrorMeasurement, costs.object);
        }
        // Size the granule run: rd + RTT root, the RTT tables the frame
        // walk needs, one granule per data page, one per REC.
        let rtt_root = rd.offset(1);
        let mut probe = Rtt::new(rtt_root);
        let mut tables_needed = 0u64;
        for f in &blob.frames {
            for level in probe.missing_levels(f.ipa) {
                probe
                    .create_table(level, f.ipa, rtt_root)
                    .expect("probe walk in level order");
                tables_needed += 1;
            }
        }
        let total = 2 + tables_needed + blob.frames.len() as u64 + blob.recs.len() as u64;
        for i in 0..total {
            match machine.memory().state(rd.offset(i)) {
                Ok(GranuleState::Delegated) => {}
                _ => {
                    // The run is short or dirty: not a measurement
                    // failure — re-stage the blob so the host can fix
                    // the delegation and retry.
                    self.staged_import = Some(blob);
                    return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.object);
                }
            }
        }
        let id = RealmId(self.realms.len() as u32);
        let claim = |machine: &mut Machine, next: &mut u64, state: GranuleState| {
            let g = rd.offset(*next);
            *next += 1;
            machine
                .memory_mut()
                .assign(g, state)
                .expect("pre-checked delegated run");
            g
        };
        let mut next = 0u64;
        claim(machine, &mut next, GranuleState::RealmRd(id));
        claim(machine, &mut next, GranuleState::RealmRtt(id));
        let mut realm = Realm::import(id, rd, rtt_root, &blob);
        for f in &blob.frames {
            for level in realm.rtt().missing_levels(f.ipa) {
                let g = claim(machine, &mut next, GranuleState::RealmRtt(id));
                realm
                    .rtt_mut()
                    .create_table(level, f.ipa, g)
                    .expect("probe walk validated the chain");
            }
            let g = claim(machine, &mut next, GranuleState::RealmData(id));
            realm
                .rtt_mut()
                .map(f.ipa, g, true)
                .expect("frames are distinct protected IPAs");
        }
        for rf in &blob.recs {
            claim(machine, &mut next, GranuleState::RealmRec(id));
            let trace = self.trace.clone();
            if let Some(rec) = realm.rec_mut(rf.index) {
                rec.vgic_mut().set_trace(trace, id.0, rf.index);
            }
        }
        self.realms.push(Some(realm));
        self.counters.incr("rmm.migrate.imported");
        RmiOutcome::ok(costs.object * 2 + costs.rtt_op * (tables_needed + blob.frames.len() as u64))
    }

    /// `RMI_IVC_CHANNEL_CREATE`: the attested inter-CVM channel
    /// handshake. The host nominates two realms, a granule-aligned
    /// non-secure window, and a doorbell SPI; the RMM admits the channel
    /// only if the realms' measurement pair is on the owner-authorised
    /// policy list, then maps the window into both realms' unprotected
    /// halves and delegates the SPI so doorbells travel realm-core to
    /// realm-core with no host exit.
    #[allow(clippy::too_many_arguments)]
    fn ivc_channel_create(
        &mut self,
        channel: u32,
        realm_a: RealmId,
        realm_b: RealmId,
        window: GranuleAddr,
        spi: u32,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        if realm_a == realm_b {
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        }
        if self
            .ivc_channels
            .iter()
            .any(|c| c.cfg.channel == channel || c.cfg.spi == spi)
        {
            return RmiOutcome::fail(RmiStatus::ErrorInUse, costs.object);
        }
        let (Some(ra), Some(rb)) = (self.realm(realm_a), self.realm(realm_b)) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        };
        // Both realms must be activated: their measurements are final,
        // so the policy check below binds the channel to the code the
        // realms will actually run — not to an image the host could
        // still swap out underneath the pairing.
        if ra.state() != RealmState::Active || rb.state() != RealmState::Active {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        }
        let (ma, mb) = (ra.measurement(), rb.measurement());
        if !self.ivc_policy.permits(ma, mb) {
            self.counters.incr("rmm.ivc.pair_rejected");
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        }
        // The window must be ordinary host memory: shared pages are
        // never delegated, matching RTT_MAP_UNPROTECTED semantics.
        for i in 0..IVC_WINDOW_GRANULES {
            match machine.memory().state(window.offset(i)) {
                Ok(GranuleState::NonSecure) => {}
                _ => return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.object),
            }
        }
        let reg = IvcChannelReg {
            cfg: ChannelConfig {
                channel,
                spi,
                window,
            },
            a: RecId::new(realm_a, 0),
            b: RecId::new(realm_b, 0),
        };
        // Map the window into both realms at the same unprotected IPA
        // alias, unwinding completely if any leaf is already occupied.
        let mut mapped: Vec<(RealmId, u64)> = Vec::new();
        for rid in [realm_a, realm_b] {
            for i in 0..IVC_WINDOW_GRANULES {
                let ipa = reg.window_ipa(i);
                let r = self.realm_mut(rid).expect("checked above");
                if r.rtt_mut().map(ipa, window.offset(i), false).is_err() {
                    for (urid, uipa) in mapped {
                        let u = self.realm_mut(urid).expect("mapped moments ago");
                        u.rtt_mut().unmap(uipa).expect("unwinding own mapping");
                    }
                    return RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op);
                }
                mapped.push((rid, ipa));
            }
        }
        self.delegate_spi(spi);
        self.ivc_channels.push(reg);
        self.counters.incr("rmm.ivc.channels_created");
        RmiOutcome::ok(costs.object + costs.rtt_op * (2 * IVC_WINDOW_GRANULES))
    }

    /// `RMI_IVC_CHANNEL_DESTROY`: unmaps the shared window from both
    /// realms, undelegates the doorbell SPI, and forgets the channel.
    fn ivc_channel_destroy(&mut self, channel: u32, costs: RmmCosts) -> RmiOutcome {
        let Some(pos) = self
            .ivc_channels
            .iter()
            .position(|c| c.cfg.channel == channel)
        else {
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        };
        let reg = self.ivc_channels.remove(pos);
        for rid in [reg.a.realm, reg.b.realm] {
            // A realm destroyed before its channel has no RTT left to
            // clean; skip it rather than fail the teardown.
            if let Some(r) = self.realm_mut(rid) {
                for i in 0..IVC_WINDOW_GRANULES {
                    let _ = r.rtt_mut().unmap(reg.window_ipa(i));
                }
            }
        }
        self.undelegate_spi(reg.cfg.spi);
        self.counters.incr("rmm.ivc.channels_destroyed");
        RmiOutcome::ok(costs.object + costs.rtt_op * (2 * IVC_WINDOW_GRANULES))
    }

    fn realm_create(
        &mut self,
        rd: GranuleAddr,
        num_recs: u32,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        if num_recs == 0 {
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        }
        // The RD granule and the adjacent RTT root granule must both be
        // delegated; the RMM claims rd and rd+1 (matching how the host
        // driver allocates them).
        let rtt_root = rd.offset(1);
        let id = RealmId(self.realms.len() as u32);
        if machine
            .memory_mut()
            .assign(rd, GranuleState::RealmRd(id))
            .is_err()
        {
            return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.object);
        }
        if machine
            .memory_mut()
            .assign(rtt_root, GranuleState::RealmRtt(id))
            .is_err()
        {
            machine.memory_mut().unassign(rd).expect("just assigned");
            return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.object);
        }
        self.realms
            .push(Some(Realm::new(id, rd, rtt_root, num_recs)));
        RmiOutcome {
            status: RmiStatus::Success,
            cost: costs.object,
            entered: None,
        }
    }

    fn realm_destroy(&mut self, id: RealmId, machine: &mut Machine, costs: RmmCosts) -> RmiOutcome {
        let Some(realm) = self.realm_mut(id) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        };
        if realm.rec_count() > 0 {
            return RmiOutcome::fail(RmiStatus::ErrorInUse, costs.object);
        }
        // Release all realm-side granules back to the delegated state.
        let leaves: Vec<(u64, crate::rtt::Mapping)> = realm.rtt().iter().collect();
        for (_, m) in &leaves {
            if m.protected {
                machine
                    .memory_mut()
                    .unassign(m.pa)
                    .expect("protected leaf granule must be realm-owned");
            }
        }
        let rd = realm.rd();
        if !realm.destroy() {
            return RmiOutcome::fail(RmiStatus::ErrorInUse, costs.object);
        }
        machine.memory_mut().unassign(rd).expect("rd assigned");
        machine
            .memory_mut()
            .unassign(rd.offset(1))
            .expect("rtt root assigned");
        self.realms[id.index()] = None;
        RmiOutcome::ok(costs.object)
    }

    fn rec_create(
        &mut self,
        realm: RealmId,
        index: u32,
        rec_granule: GranuleAddr,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let Some(r) = self.realm_mut(realm) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        };
        if r.state() != RealmState::New {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        }
        if machine
            .memory_mut()
            .assign(rec_granule, GranuleState::RealmRec(realm))
            .is_err()
        {
            return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.object);
        }
        let trace = self.trace.clone();
        let r = self.realm_mut(realm).expect("checked above");
        let mut rec = Rec::new();
        rec.vgic_mut().set_trace(trace, realm.0, index);
        if !r.add_rec(index, rec) {
            machine
                .memory_mut()
                .unassign(rec_granule)
                .expect("just assigned");
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.object);
        }
        RmiOutcome::ok(costs.object)
    }

    fn rec_destroy(&mut self, rec: RecId, machine: &mut Machine, costs: RmmCosts) -> RmiOutcome {
        let Some(r) = self.realm_mut(rec.realm) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.object);
        };
        let Some(state) = r.rec(rec.index).map(|x| x.state()) else {
            return RmiOutcome::fail(RmiStatus::ErrorRec, costs.object);
        };
        if state == RecState::Running {
            return RmiOutcome::fail(RmiStatus::ErrorInUse, costs.object);
        }
        r.remove_rec(rec.index);
        let bound_core = self.coregap.binding(rec);
        self.coregap.unbind(rec);
        if let Some(core) = bound_core {
            if self.coregap.core_owner(core).is_none() {
                machine.cpu_mut(core).unbind_realm();
            }
        }
        RmiOutcome::ok(costs.object)
    }

    fn data_create(
        &mut self,
        realm: RealmId,
        data: GranuleAddr,
        ipa: u64,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let Some(r) = self.realm(realm) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op);
        };
        if r.state() != RealmState::New {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op);
        }
        if ipa_is_unprotected(ipa) {
            return RmiOutcome::fail(RmiStatus::ErrorInput, costs.rtt_op);
        }
        if machine
            .memory_mut()
            .assign(data, GranuleState::RealmData(realm))
            .is_err()
        {
            return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.rtt_op);
        }
        let r = self.realm_mut(realm).expect("checked above");
        match r.rtt_mut().map(ipa, data, true) {
            Ok(()) => {
                r.add_data_page();
                r.note_data_page(ipa);
                r.extend_measurement(Measurement::of(&ipa.to_le_bytes()));
                RmiOutcome::ok(costs.rtt_op)
            }
            Err(_) => {
                machine.memory_mut().unassign(data).expect("just assigned");
                RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op)
            }
        }
    }

    fn data_destroy(
        &mut self,
        realm: RealmId,
        ipa: u64,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let Some(r) = self.realm_mut(realm) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op);
        };
        match r.rtt_mut().unmap(ipa) {
            Ok(m) if m.protected => {
                r.remove_data_page();
                r.forget_data_page(ipa);
                machine
                    .memory_mut()
                    .unassign(m.pa)
                    .expect("protected page granule must be realm-owned");
                RmiOutcome::ok(costs.rtt_op)
            }
            Ok(m) => {
                // Shouldn't unmap unprotected memory through DATA_DESTROY;
                // put it back.
                r.rtt_mut()
                    .map(ipa, m.pa, false)
                    .expect("restoring just-unmapped entry");
                RmiOutcome::fail(RmiStatus::ErrorInput, costs.rtt_op)
            }
            Err(_) => RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op),
        }
    }

    fn rtt_create(
        &mut self,
        realm: RealmId,
        rtt: GranuleAddr,
        ipa: u64,
        level: cg_cca::RttLevel,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        if self.realm(realm).is_none() {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op);
        };
        if machine
            .memory_mut()
            .assign(rtt, GranuleState::RealmRtt(realm))
            .is_err()
        {
            return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.rtt_op);
        }
        let r = self.realm_mut(realm).expect("checked above");
        match r.rtt_mut().create_table(level, ipa, rtt) {
            Ok(()) => RmiOutcome::ok(costs.rtt_op),
            Err(_) => {
                machine.memory_mut().unassign(rtt).expect("just assigned");
                RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op)
            }
        }
    }

    fn rtt_map_unprotected(
        &mut self,
        realm: RealmId,
        ipa: u64,
        addr: GranuleAddr,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let Some(r) = self.realm_mut(realm) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.rtt_op);
        };
        // The granule must be host memory (non-secure): shared pages are
        // never delegated.
        match machine.memory().state(addr) {
            Ok(GranuleState::NonSecure) => {}
            _ => return RmiOutcome::fail(RmiStatus::ErrorGranule, costs.rtt_op),
        }
        match r.rtt_mut().map(ipa, addr, false) {
            Ok(()) => RmiOutcome::ok(costs.rtt_op),
            Err(RttError::AlreadyMapped) => RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op),
            Err(_) => RmiOutcome::fail(RmiStatus::ErrorRtt, costs.rtt_op),
        }
    }

    fn rec_enter(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        machine: &mut Machine,
        costs: RmmCosts,
    ) -> RmiOutcome {
        let params = machine.params().clone();
        let enter_cost = costs.enter_extra + params.context_restore + params.realm_enter;
        let Some(realm_state) = self.realm(rec_id.realm).map(|r| r.state()) else {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.query);
        };
        if realm_state != RealmState::Active {
            return RmiOutcome::fail(RmiStatus::ErrorRealm, costs.query);
        }
        if self.config.core_gapping {
            match self.coregap.check_and_bind(rec_id, core) {
                Ok(()) => {}
                Err(CoreGapError::WrongCore { .. }) | Err(CoreGapError::CoreBusy { .. }) => {
                    return RmiOutcome::fail(RmiStatus::ErrorCoreBinding, costs.query);
                }
                Err(_) => return RmiOutcome::fail(RmiStatus::ErrorInput, costs.query),
            }
            machine.cpu_mut(core).bind_realm(rec_id.realm);
        }
        let delegation = self.config.delegation;
        let Some(rec) = self.rec_mut(rec_id) else {
            return RmiOutcome::fail(RmiStatus::ErrorRec, costs.query);
        };
        if !rec.enter() {
            return RmiOutcome::fail(RmiStatus::ErrorRec, costs.query);
        }
        // Stage pending virtual interrupts into the core's list registers.
        let vgic = rec.vgic_mut();
        vgic.sync_to_lrs(core, machine.gic_mut());
        let _ = delegation; // entry list merging happens in enter_with_list
        machine
            .cpu_mut(core)
            .set_current_domain(Some(Domain::Realm(rec_id.realm)));
        RmiOutcome {
            status: RmiStatus::Success,
            cost: enter_cost,
            entered: Some(rec_id),
        }
    }

    /// Variant of the `REC_ENTER` path that first merges the
    /// host-provided virtual-interrupt list (fig. 5 step ①). This is what
    /// the system layer calls with the [`cg_cca::RecEntry`] contents.
    pub fn rec_enter_with_list(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        host_interrupts: &[IntId],
        machine: &mut Machine,
    ) -> RmiOutcome {
        let delegation = self.config.delegation;
        if let Some(rec) = self.rec_mut(rec_id) {
            rec.vgic_mut().host_provides(host_interrupts, delegation);
        }
        let costs = self.config.costs.clone();
        self.rec_enter(core, rec_id, machine, costs)
    }

    // ----- guest event handling -----

    /// Handles an architectural event from the guest running `rec_id` on
    /// `core`, returning the disposition.
    ///
    /// # Panics
    ///
    /// Panics if `rec_id` does not exist or is not running — the caller
    /// (the system layer) only reports events for entered vCPUs.
    pub fn on_guest_event(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        event: GuestEvent,
        machine: &mut Machine,
    ) -> Disposition {
        assert_eq!(
            self.rec(rec_id).map(|r| r.state()),
            Some(RecState::Running),
            "guest event for non-running {rec_id}"
        );
        let params = machine.params().clone();
        let delegation = self.config.delegation;
        let costs = self.config.costs.clone();
        match event {
            GuestEvent::TimerProgram { deadline } => {
                if delegation.timer {
                    self.counters.incr("rmm.delegated.timer_program");
                    let rec = self.rec_mut(rec_id).expect("checked running");
                    rec.set_vtimer(Some(deadline));
                    machine.timer_mut(core).program(deadline);
                    Disposition::Resume {
                        cost: params.sysreg_trap_emulate + params.timer_program,
                    }
                } else {
                    // Expose the written deadline so the host can emulate
                    // the timer (KVM's vtimer emulation path).
                    let mut disp = self.exit_to_host(
                        core,
                        rec_id,
                        RecExitReason::SysregTrap { sysreg: 0x0E03 }, // CNTV_CVAL
                        machine,
                    );
                    if let Disposition::ExitToHost { exit, .. } = &mut disp {
                        exit.gprs[0] = deadline.as_nanos();
                    }
                    disp
                }
            }
            GuestEvent::TimerCancel => {
                if delegation.timer {
                    let rec = self.rec_mut(rec_id).expect("checked running");
                    rec.set_vtimer(None);
                    machine.timer_mut(core).cancel();
                    Disposition::Resume {
                        cost: params.sysreg_trap_emulate,
                    }
                } else {
                    self.exit_to_host(
                        core,
                        rec_id,
                        RecExitReason::SysregTrap { sysreg: 0x0E03 },
                        machine,
                    )
                }
            }
            GuestEvent::SendIpi { target_index, sgi } => {
                if delegation.ipi {
                    self.counters.incr("rmm.delegated.ipi");
                    let target = RecId::new(rec_id.realm, target_index);
                    if self.rec(target).is_none() {
                        // Bad target: ignore, as hardware would for an
                        // unimplemented CPU target.
                        return Disposition::Resume {
                            cost: params.sysreg_trap_emulate,
                        };
                    }
                    self.rec_mut(target)
                        .expect("checked above")
                        .vgic_mut()
                        .inject_local(IntId::sgi(sgi.min(15)));
                    let target_core = self.coregap.core_of(target);
                    match target_core {
                        Some(tc) if tc != core => Disposition::ResumeWithIpi {
                            target_core: tc,
                            cost: params.sysreg_trap_emulate + params.mailbox_write,
                        },
                        _ => Disposition::Resume {
                            cost: params.sysreg_trap_emulate,
                        },
                    }
                } else {
                    // Expose target vCPU and SGI number for host emulation.
                    let mut disp = self.exit_to_host(
                        core,
                        rec_id,
                        RecExitReason::SysregTrap { sysreg: 0x0C0B }, // ICC_SGI1R
                        machine,
                    );
                    if let Disposition::ExitToHost { exit, .. } = &mut disp {
                        exit.gprs[0] = target_index as u64;
                        exit.gprs[1] = sgi as u64;
                    }
                    disp
                }
            }
            GuestEvent::Wfi => {
                // If anything is already pending, WFI falls through.
                let has_virq = machine.gic().next_virtual_pending(core).is_some()
                    || !self.rec(rec_id).expect("checked running").vgic().is_idle();
                if has_virq {
                    let rec = self.rec_mut(rec_id).expect("checked running");
                    rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
                    Disposition::Resume {
                        cost: params.sysreg_trap_emulate,
                    }
                } else if self.config.core_gapping && (delegation.timer || delegation.ipi) {
                    // Dedicated core with delegated interrupt sources:
                    // idle inside the RMM so local interrupts can wake
                    // the guest without the host. Without delegation the
                    // baseline RMM semantics apply: WFI exits to the
                    // host (RMI_EXIT_WFI), and the vCPU thread blocks.
                    Disposition::Idle {
                        cost: params.realm_exit_trap,
                    }
                } else {
                    self.exit_to_host(core, rec_id, RecExitReason::Wfi, machine)
                }
            }
            GuestEvent::MmioRead { ipa, size } => {
                self.exit_to_host(core, rec_id, RecExitReason::MmioRead { ipa, size }, machine)
            }
            GuestEvent::MmioWrite { ipa, size, value } => self.exit_to_host(
                core,
                rec_id,
                RecExitReason::MmioWrite { ipa, size, value },
                machine,
            ),
            GuestEvent::HostCall { imm } => {
                self.exit_to_host(core, rec_id, RecExitReason::HostCall { imm }, machine)
            }
            GuestEvent::Stage2Fault { ipa } => {
                self.exit_to_host(core, rec_id, RecExitReason::Stage2Fault { ipa }, machine)
            }
            GuestEvent::Shutdown => {
                self.rec_mut(rec_id).expect("checked running").halt();
                let mut disp =
                    self.exit_to_host_inner(core, rec_id, RecExitReason::Shutdown, machine, false);
                if let Disposition::ExitToHost { cost, .. } = &mut disp {
                    *cost += costs.object;
                }
                disp
            }
            GuestEvent::PhysIrq { intid } => self.on_phys_irq(core, rec_id, intid, machine),
        }
    }

    fn on_phys_irq(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        intid: IntId,
        machine: &mut Machine,
    ) -> Disposition {
        let params = machine.params().clone();
        let delegation = self.config.delegation;
        machine.gic_mut().rescind(core, intid);
        if intid == IntId::VTIMER && delegation.timer {
            // Delegated timer tick: inject the virtual timer interrupt
            // locally and resume — no host involvement (§4.4).
            self.counters.incr("rmm.delegated.timer_fire");
            let rec = self.rec_mut(rec_id).expect("checked running");
            rec.set_vtimer(None);
            rec.vgic_mut().inject_local(IntId::VTIMER);
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            let cost = params.realm_exit_trap + params.sysreg_trap_emulate + params.realm_enter;
            self.profiler.record_dur(
                cg_sim::SpanKind::TimerFire,
                Some(core.0),
                Some(rec_id.realm.0),
                Some(rec_id.index),
                cost,
            );
            return Disposition::Resume { cost };
        }
        if intid == REALM_DOORBELL_SGI && delegation.ipi {
            // Delegated IPI arrival: pending SGIs were placed in our vgic
            // by the sender's core; stage and resume.
            self.counters.incr("rmm.delegated.ipi_deliver");
            let rec = self.rec_mut(rec_id).expect("checked running");
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            return Disposition::Resume {
                cost: params.realm_exit_trap + params.sysreg_trap_emulate + params.realm_enter,
            };
        }
        if let Some(reg) = self.ivc_channel_for_spi(intid) {
            // Inter-CVM doorbell. Only the two registered endpoint vCPUs
            // may receive this SPI: the host controls physical SPI
            // routing, so a malicious host can replay the interrupt onto
            // any core (Heckler-style). Validate the arriving vCPU
            // against the channel registration and silently drop
            // anything forged or misrouted — never surface it to the
            // victim guest.
            if rec_id == reg.a || rec_id == reg.b {
                self.counters.incr("rmm.ivc.doorbell_delivered");
                let rec = self.rec_mut(rec_id).expect("checked running");
                rec.vgic_mut().inject_local(intid);
                rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
                return Disposition::Resume {
                    cost: params.realm_exit_trap + params.sysreg_trap_emulate + params.realm_enter,
                };
            }
            self.counters.incr("rmm.ivc.doorbell_rejected");
            return Disposition::Resume {
                cost: params.realm_exit_trap + params.realm_enter,
            };
        }
        if self.spi_delegated(intid) {
            // Direct device-interrupt delivery: inject the SPI locally.
            self.counters.incr("rmm.direct.device_irq");
            let rec = self.rec_mut(rec_id).expect("checked running");
            rec.vgic_mut().inject_local(intid);
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            return Disposition::Resume {
                cost: params.realm_exit_trap + params.sysreg_trap_emulate + params.realm_enter,
            };
        }
        // Anything else concerns the host (its own devices, its kick
        // doorbell): exit.
        self.exit_to_host(core, rec_id, RecExitReason::HostInterrupt, machine)
    }

    fn exit_to_host(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        reason: RecExitReason,
        machine: &mut Machine,
    ) -> Disposition {
        self.exit_to_host_inner(core, rec_id, reason, machine, true)
    }

    fn exit_to_host_inner(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        reason: RecExitReason,
        machine: &mut Machine,
        mark_exited: bool,
    ) -> Disposition {
        let params = machine.params().clone();
        let delegation = self.config.delegation;
        self.counters.incr(&format!("rmm.exit.{reason}"));
        let rec = self.rec_mut(rec_id).expect("guest event for live rec");
        rec.count_exit(reason.is_interrupt_related());
        if mark_exited {
            rec.exit();
        }
        let interrupts = rec.vgic().filtered_view(core, machine.gic(), delegation);
        machine
            .cpu_mut(core)
            .set_current_domain(Some(Domain::Monitor));
        let mut exit = RecExit::new(reason);
        exit.interrupts = interrupts;
        Disposition::ExitToHost {
            exit,
            cost: params.realm_exit_trap + params.context_save + self.config.costs.exit_extra,
        }
    }

    /// Handles a physical interrupt arriving at a dedicated core while
    /// the guest is **idle in WFI** inside the RMM. Returns the
    /// disposition for resuming (or exiting) and stages any delegated
    /// interrupt.
    pub fn on_idle_irq(
        &mut self,
        core: CoreId,
        rec_id: RecId,
        intid: IntId,
        machine: &mut Machine,
    ) -> Disposition {
        let params = machine.params().clone();
        let delegation = self.config.delegation;
        machine.gic_mut().rescind(core, intid);
        if intid == IntId::VTIMER && delegation.timer {
            self.counters.incr("rmm.delegated.timer_fire");
            let rec = self.rec_mut(rec_id).expect("idle rec exists");
            rec.set_vtimer(None);
            rec.vgic_mut().inject_local(IntId::VTIMER);
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            let cost = params.sysreg_trap_emulate + params.realm_enter;
            self.profiler.record_dur(
                cg_sim::SpanKind::TimerFire,
                Some(core.0),
                Some(rec_id.realm.0),
                Some(rec_id.index),
                cost,
            );
            return Disposition::Resume { cost };
        }
        if intid == REALM_DOORBELL_SGI && delegation.ipi {
            self.counters.incr("rmm.delegated.ipi_deliver");
            let rec = self.rec_mut(rec_id).expect("idle rec exists");
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            return Disposition::Resume {
                cost: params.sysreg_trap_emulate + params.realm_enter,
            };
        }
        if let Some(reg) = self.ivc_channel_for_spi(intid) {
            // Inter-CVM doorbell while idle: same endpoint validation as
            // the running-guest path. A forged or misrouted doorbell
            // must not even wake the victim — stay idle.
            if rec_id == reg.a || rec_id == reg.b {
                self.counters.incr("rmm.ivc.doorbell_delivered");
                let rec = self.rec_mut(rec_id).expect("idle rec exists");
                rec.vgic_mut().inject_local(intid);
                rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
                return Disposition::Resume {
                    cost: params.sysreg_trap_emulate + params.realm_enter,
                };
            }
            self.counters.incr("rmm.ivc.doorbell_rejected");
            return Disposition::Idle {
                cost: params.sysreg_trap_emulate,
            };
        }
        if self.spi_delegated(intid) {
            self.counters.incr("rmm.direct.device_irq");
            let rec = self.rec_mut(rec_id).expect("idle rec exists");
            rec.vgic_mut().inject_local(intid);
            rec.vgic_mut().sync_to_lrs(core, machine.gic_mut());
            return Disposition::Resume {
                cost: params.sysreg_trap_emulate + params.realm_enter,
            };
        }
        // Host-directed interrupt while idle: the vCPU must report to the
        // host. The REC is currently Running (idle-in-WFI is a sub-state
        // of entered execution).
        self.exit_to_host(core, rec_id, RecExitReason::HostInterrupt, machine)
    }

    /// Handles a guest RSI call (the guest-facing interface): version
    /// queries, attestation-token requests, realm configuration, and
    /// host calls (which the caller forwards to the host as an exit).
    pub fn handle_rsi(&mut self, realm_id: RealmId, call: cg_cca::RsiCall) -> cg_cca::RsiResult {
        use cg_cca::{AttestationToken, PlatformCert, RsiCall, RsiResult};
        self.counters.incr("rsi.calls");
        match call {
            RsiCall::Version => RsiResult::Version(1, 0),
            RsiCall::RealmConfig => RsiResult::RealmConfig {
                ipa_width: crate::rtt::IPA_WIDTH as u8,
            },
            RsiCall::AttestationToken { challenge } => match self.realm(realm_id) {
                Some(realm) => RsiResult::Token(AttestationToken::issue(
                    &PlatformCert::example(),
                    self.platform_measurement,
                    realm.measurement(),
                    challenge,
                )),
                None => RsiResult::Error,
            },
            RsiCall::HostCall { .. } => RsiResult::HostCallDone,
            RsiCall::IvcInfo { channel } => {
                // The guest-side half of the attested handshake: the
                // caller learns who it shares the window with (the
                // peer's measurement, checkable against an expected
                // value) and which SPI the doorbell arrives on. Only an
                // endpoint realm may query the channel.
                let Some(reg) = self
                    .ivc_channels
                    .iter()
                    .find(|c| c.cfg.channel == channel)
                    .copied()
                else {
                    return RsiResult::Error;
                };
                let peer = if reg.a.realm == realm_id {
                    reg.b.realm
                } else if reg.b.realm == realm_id {
                    reg.a.realm
                } else {
                    return RsiResult::Error;
                };
                match self.realm(peer) {
                    Some(p) => RsiResult::IvcChannel {
                        peer_measurement: p.measurement(),
                        spi: reg.cfg.spi,
                    },
                    None => RsiResult::Error,
                }
            }
            RsiCall::MigrationInfo => match self.realm(realm_id) {
                Some(r) => RsiResult::MigrationInfo {
                    generation: r.generation(),
                },
                None => RsiResult::Error,
            },
        }
    }

    /// The host (KVM) requests that a running vCPU exit (the "kick" used
    /// to inject device interrupts or deliver signals). Marks the request;
    /// the system layer also raises the physical doorbell.
    pub fn host_kick(&mut self, rec_id: RecId) {
        if let Some(rec) = self.rec_mut(rec_id) {
            rec.request_kick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_machine::HwParams;

    fn setup() -> (Rmm, Machine) {
        (
            Rmm::new(RmmConfig::core_gapped()),
            Machine::new(HwParams::small()).unwrap(),
        )
    }

    fn g(n: u64) -> GranuleAddr {
        GranuleAddr::new(n * 4096).unwrap()
    }

    /// Drives `rec` (running on `core`) out to the host via an MMIO
    /// exit, leaving it Ready for rebind/unbind operations.
    fn exit_via_mmio(rmm: &mut Rmm, machine: &mut Machine, core: CoreId, rec: RecId) {
        let disp = rmm.on_guest_event(
            core,
            rec,
            GuestEvent::MmioWrite {
                ipa: 0x9000_0000,
                size: 4,
                value: 0,
            },
            machine,
        );
        assert!(matches!(disp, Disposition::ExitToHost { .. }), "{disp:?}");
        assert_eq!(rmm.rec(rec).unwrap().state(), RecState::Ready);
    }

    /// Builds an active 2-vCPU realm with granules 10.. delegated, and
    /// dedicates cores 4 and 5.
    fn build_realm(rmm: &mut Rmm, machine: &mut Machine) -> RealmId {
        for n in 10..30 {
            machine.memory_mut().delegate(g(n)).unwrap();
        }
        let c = CoreId(0);
        let out = rmm.handle_rmi(
            c,
            RmiCall::RealmCreate {
                rd: g(10),
                num_recs: 2,
            },
            machine,
        );
        assert!(out.status.is_success(), "{out:?}");
        let realm = RealmId(0);
        for (i, n) in [(0u32, 12u64), (1, 13)] {
            let out = rmm.handle_rmi(
                c,
                RmiCall::RecCreate {
                    realm,
                    index: i,
                    rec: g(n),
                },
                machine,
            );
            assert!(out.status.is_success(), "{out:?}");
        }
        assert!(rmm
            .handle_rmi(c, RmiCall::RealmActivate { realm }, machine)
            .status
            .is_success());
        // The host hotplugs the cores offline, then hands them over.
        for c in [CoreId(4), CoreId(5)] {
            machine.cpu_mut(c).offline();
            rmm.dedicate_core(c, machine).unwrap();
        }
        realm
    }

    #[test]
    fn realm_lifecycle_via_rmi() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        assert_eq!(rmm.realm(realm).unwrap().state(), RealmState::Active);
        // Destroy requires RECs gone.
        let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmDestroy { realm }, &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorInUse);
        for i in 0..2 {
            let out = rmm.handle_rmi(
                CoreId(0),
                RmiCall::RecDestroy {
                    rec: RecId::new(realm, i),
                },
                &mut machine,
            );
            assert!(out.status.is_success());
        }
        let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmDestroy { realm }, &mut machine);
        assert!(out.status.is_success());
        // The RD granule is delegated again and can be undelegated.
        let out = rmm.handle_rmi(
            CoreId(0),
            RmiCall::GranuleUndelegate { addr: g(10) },
            &mut machine,
        );
        assert!(out.status.is_success());
    }

    #[test]
    fn rec_enter_binds_core_and_rejects_migration() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        let out = rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        assert_eq!(out.status, RmiStatus::Success);
        assert_eq!(out.entered, Some(rec));
        assert_eq!(rmm.coregap().binding(rec), Some(CoreId(4)));
        // Exit the guest so it could in principle re-enter.
        let disp = rmm.on_guest_event(
            CoreId(4),
            rec,
            GuestEvent::HostCall { imm: 1 },
            &mut machine,
        );
        assert!(matches!(disp, Disposition::ExitToHost { .. }));
        // Re-entry on another dedicated core fails with the binding error.
        let out = rmm.rec_enter_with_list(CoreId(5), rec, &[], &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorCoreBinding);
        // Another realm's vCPU cannot use core 4 either — but here the
        // same realm's other vCPU *may* (architecturally).
        let out = rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        assert_eq!(out.status, RmiStatus::Success);
    }

    #[test]
    fn rec_enter_on_non_dedicated_core_fails() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let out = rmm.rec_enter_with_list(CoreId(0), RecId::new(realm, 0), &[], &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorInput);
    }

    #[test]
    fn delegated_timer_is_handled_locally() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        let deadline = SimTime::from_nanos(4_000_000);
        let disp = rmm.on_guest_event(
            CoreId(4),
            rec,
            GuestEvent::TimerProgram { deadline },
            &mut machine,
        );
        assert!(matches!(disp, Disposition::Resume { .. }), "{disp:?}");
        assert!(machine.timer(CoreId(4)).is_armed());
        // Tick fires as a physical IRQ: still no host exit.
        let disp = rmm.on_guest_event(
            CoreId(4),
            rec,
            GuestEvent::PhysIrq {
                intid: IntId::VTIMER,
            },
            &mut machine,
        );
        assert!(matches!(disp, Disposition::Resume { .. }), "{disp:?}");
        // The vtimer interrupt is staged for the guest.
        assert_eq!(
            machine.gic().next_virtual_pending(CoreId(4)),
            Some(IntId::VTIMER)
        );
        assert_eq!(rmm.rec(rec).unwrap().exits_total(), 0);
    }

    #[test]
    fn timer_without_delegation_exits_to_host() {
        let mut rmm = Rmm::new(RmmConfig::core_gapped_no_delegation());
        let mut machine = Machine::new(HwParams::small()).unwrap();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        let disp = rmm.on_guest_event(
            CoreId(4),
            rec,
            GuestEvent::TimerProgram {
                deadline: SimTime::from_nanos(100),
            },
            &mut machine,
        );
        match disp {
            Disposition::ExitToHost { exit, .. } => {
                assert!(matches!(exit.reason, RecExitReason::SysregTrap { .. }));
            }
            other => panic!("expected exit, got {other:?}"),
        }
        assert_eq!(rmm.rec(rec).unwrap().exits_interrupt(), 1);
    }

    #[test]
    fn delegated_ipi_crosses_cores_without_host() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let sender = RecId::new(realm, 0);
        let receiver = RecId::new(realm, 1);
        rmm.rec_enter_with_list(CoreId(4), sender, &[], &mut machine);
        rmm.rec_enter_with_list(CoreId(5), receiver, &[], &mut machine);
        let disp = rmm.on_guest_event(
            CoreId(4),
            sender,
            GuestEvent::SendIpi {
                target_index: 1,
                sgi: 3,
            },
            &mut machine,
        );
        match disp {
            Disposition::ResumeWithIpi { target_core, .. } => {
                assert_eq!(target_core, CoreId(5));
            }
            other => panic!("expected ResumeWithIpi, got {other:?}"),
        }
        // Receiver core takes the doorbell: SGI 3 staged locally.
        let disp = rmm.on_guest_event(
            CoreId(5),
            receiver,
            GuestEvent::PhysIrq {
                intid: REALM_DOORBELL_SGI,
            },
            &mut machine,
        );
        assert!(matches!(disp, Disposition::Resume { .. }));
        assert_eq!(
            machine.gic().next_virtual_pending(CoreId(5)),
            Some(IntId::sgi(3))
        );
        assert_eq!(rmm.rec(sender).unwrap().exits_total(), 0);
        assert_eq!(rmm.rec(receiver).unwrap().exits_total(), 0);
    }

    #[test]
    fn wfi_idles_on_dedicated_core() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        let disp = rmm.on_guest_event(CoreId(4), rec, GuestEvent::Wfi, &mut machine);
        assert!(matches!(disp, Disposition::Idle { .. }), "{disp:?}");
        // A delegated timer interrupt wakes it locally.
        let disp = rmm.on_idle_irq(CoreId(4), rec, IntId::VTIMER, &mut machine);
        assert!(matches!(disp, Disposition::Resume { .. }));
    }

    #[test]
    fn wfi_with_pending_interrupt_resumes() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        rmm.rec_mut(rec)
            .unwrap()
            .vgic_mut()
            .inject_local(IntId::VTIMER);
        let disp = rmm.on_guest_event(CoreId(4), rec, GuestEvent::Wfi, &mut machine);
        assert!(matches!(disp, Disposition::Resume { .. }));
    }

    #[test]
    fn mmio_always_exits_and_filters_interrupts() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[IntId::spi(2)], &mut machine);
        // Delegated timer pending too — must not appear in the host view.
        rmm.rec_mut(rec)
            .unwrap()
            .vgic_mut()
            .inject_local(IntId::VTIMER);
        let disp = rmm.on_guest_event(
            CoreId(4),
            rec,
            GuestEvent::MmioWrite {
                ipa: 0x9000_0000,
                size: 4,
                value: 1,
            },
            &mut machine,
        );
        match disp {
            Disposition::ExitToHost { exit, .. } => {
                assert!(matches!(exit.reason, RecExitReason::MmioWrite { .. }));
                assert!(exit.interrupts.contains(&IntId::spi(2)));
                assert!(!exit.interrupts.contains(&IntId::VTIMER));
            }
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_halts_rec() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        let disp = rmm.on_guest_event(CoreId(4), rec, GuestEvent::Shutdown, &mut machine);
        assert!(matches!(
            disp,
            Disposition::ExitToHost {
                exit: RecExit {
                    reason: RecExitReason::Shutdown,
                    ..
                },
                ..
            }
        ));
        assert_eq!(rmm.rec(rec).unwrap().state(), RecState::Halted);
        // A halted vCPU cannot be re-entered.
        let out = rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorRec);
    }

    #[test]
    fn reclaim_core_after_realm_teardown() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        rmm.on_guest_event(CoreId(4), rec, GuestEvent::Shutdown, &mut machine);
        // While bound, reclaim fails.
        assert!(rmm.reclaim_core(CoreId(4), &mut machine).is_err());
        rmm.handle_rmi(CoreId(0), RmiCall::RecDestroy { rec }, &mut machine);
        rmm.reclaim_core(CoreId(4), &mut machine).unwrap();
        assert!(machine.cpu(CoreId(4)).is_host_schedulable());
    }

    #[test]
    fn rebind_moves_exited_rec_between_dedicated_cores() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        // Mid-run the binding is immovable.
        assert_eq!(
            rmm.rebind_rec(rec, CoreId(5), &mut machine),
            Err(CoreGapError::RecRunning)
        );
        exit_via_mmio(&mut rmm, &mut machine, CoreId(4), rec);
        // Target must be dedicated.
        assert_eq!(
            rmm.rebind_rec(rec, CoreId(1), &mut machine),
            Err(CoreGapError::NotDedicated)
        );
        let cost = rmm.rebind_rec(rec, CoreId(5), &mut machine).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(rmm.coregap().binding(rec), Some(CoreId(5)));
        assert_eq!(rmm.coregap().core_owner(CoreId(4)), None);
        // The vacated core is reclaimable; the new one re-enters fine.
        rmm.reclaim_core(CoreId(4), &mut machine).unwrap();
        let out = rmm.rec_enter_with_list(CoreId(5), rec, &[], &mut machine);
        assert!(out.status.is_success(), "{out:?}");
        // Entering anywhere else keeps failing: the binding moved, it
        // did not loosen.
        exit_via_mmio(&mut rmm, &mut machine, CoreId(5), rec);
        machine.cpu_mut(CoreId(6)).offline();
        rmm.dedicate_core(CoreId(6), &mut machine).unwrap();
        let out = rmm.rec_enter_with_list(CoreId(6), rec, &[], &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorCoreBinding);
    }

    #[test]
    fn unbind_rec_frees_core_without_destroying_rec() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rec = RecId::new(realm, 0);
        assert_eq!(rmm.unbind_rec(rec, &mut machine), None);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        exit_via_mmio(&mut rmm, &mut machine, CoreId(4), rec);
        assert_eq!(rmm.unbind_rec(rec, &mut machine), Some(CoreId(4)));
        rmm.reclaim_core(CoreId(4), &mut machine).unwrap();
        // The REC lies dormant: a later entry on a fresh dedicated core
        // establishes a new first-entry binding (scale-up revival).
        machine.cpu_mut(CoreId(6)).offline();
        rmm.dedicate_core(CoreId(6), &mut machine).unwrap();
        let out = rmm.rec_enter_with_list(CoreId(6), rec, &[], &mut machine);
        assert!(out.status.is_success(), "{out:?}");
    }

    #[test]
    fn rsi_calls_serve_the_guest() {
        use cg_cca::{PlatformCert, RsiCall, RsiResult};
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        assert_eq!(
            rmm.handle_rsi(realm, RsiCall::Version),
            RsiResult::Version(1, 0)
        );
        match rmm.handle_rsi(realm, RsiCall::RealmConfig) {
            RsiResult::RealmConfig { ipa_width } => assert_eq!(ipa_width, 48),
            other => panic!("unexpected {other:?}"),
        }
        match rmm.handle_rsi(realm, RsiCall::AttestationToken { challenge: 7 }) {
            RsiResult::Token(token) => {
                assert!(token.verify(&PlatformCert::example(), rmm.platform_measurement(), 7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown realm → error.
        assert_eq!(
            rmm.handle_rsi(RealmId(99), RsiCall::AttestationToken { challenge: 1 }),
            RsiResult::Error
        );
    }

    /// Builds an active 1-vCPU realm at rd `g(10)` with an RTT chain and
    /// two protected data pages (ipa 0x1000, 0x2000), and dedicates
    /// core 4. Granules 10..60 are delegated.
    fn build_realm_with_data(rmm: &mut Rmm, machine: &mut Machine) -> RealmId {
        for n in 10..60 {
            machine.memory_mut().delegate(g(n)).unwrap();
        }
        let c = CoreId(0);
        let out = rmm.handle_rmi(
            c,
            RmiCall::RealmCreate {
                rd: g(10),
                num_recs: 1,
            },
            machine,
        );
        assert!(out.status.is_success(), "{out:?}");
        let realm = RealmId(0);
        for (lvl, n) in [(1u8, 20u64), (2, 21), (3, 22)] {
            let out = rmm.handle_rmi(
                c,
                RmiCall::RttCreate {
                    realm,
                    rtt: g(n),
                    ipa: 0,
                    level: cg_cca::RttLevel(lvl),
                },
                machine,
            );
            assert!(out.status.is_success(), "{out:?}");
        }
        for (ipa, n) in [(0x1000u64, 23u64), (0x2000, 24)] {
            let out = rmm.handle_rmi(
                c,
                RmiCall::DataCreate {
                    realm,
                    data: g(n),
                    ipa,
                },
                machine,
            );
            assert!(out.status.is_success(), "{out:?}");
        }
        let out = rmm.handle_rmi(
            c,
            RmiCall::RecCreate {
                realm,
                index: 0,
                rec: g(12),
            },
            machine,
        );
        assert!(out.status.is_success(), "{out:?}");
        assert!(rmm
            .handle_rmi(c, RmiCall::RealmActivate { realm }, machine)
            .status
            .is_success());
        machine.cpu_mut(CoreId(4)).offline();
        rmm.dedicate_core(CoreId(4), machine).unwrap();
        realm
    }

    /// Runs the source half of a migration: pre-copy rounds then an
    /// export, returning the sealed blob and the source measurement.
    fn export_blob(
        rmm: &mut Rmm,
        machine: &mut Machine,
    ) -> (crate::migrate::MigrationBlob, Measurement) {
        let realm = build_realm_with_data(rmm, machine);
        assert!(rmm.migration_begin(realm));
        // Round 1 carries the whole image.
        let round1 = rmm.migration_round(realm).unwrap();
        assert_eq!(round1.len(), 2);
        // The guest dirties one page during the copy; it shows up in
        // round 2 with a bumped version.
        rmm.note_guest_write(realm, 0x1000);
        let round2 = rmm.migration_round(realm).unwrap();
        assert_eq!((round2[0].ipa, round2[0].version), (0x1000, 1));
        // One more write before stop-and-copy: the export's delta.
        rmm.note_guest_write(realm, 0x2000);
        let out = rmm.handle_rmi(CoreId(0), RmiCall::MigrationExport { realm }, machine);
        assert!(out.status.is_success(), "{out:?}");
        let blob = rmm.take_migration_blob().unwrap();
        let src = rmm.realm(realm).unwrap().measurement();
        (blob, src)
    }

    #[test]
    fn migration_export_import_round_trip() {
        let (mut rmm, mut machine) = setup();
        let (blob, src) = export_blob(&mut rmm, &mut machine);
        assert!(blob.verify_seal());
        assert_eq!(blob.delta, 1, "one page dirty at stop-and-copy");
        assert_eq!(blob.frames.len(), 2);
        // Source realm is intact (abort-and-resume stays possible).
        assert_eq!(rmm.realm(RealmId(0)).unwrap().state(), RealmState::Active);
        assert!(!rmm.realm(RealmId(0)).unwrap().dirty_tracking());

        // Destination node: delegate a run and import.
        let (mut dst, mut dmachine) = setup();
        for n in 10..40 {
            dmachine.memory_mut().delegate(g(n)).unwrap();
        }
        dst.stage_migration_blob(blob);
        let out = dst.handle_rmi(
            CoreId(0),
            RmiCall::MigrationImport {
                rd: g(10),
                src_lo: src.0[0],
                src_hi: src.0[1],
            },
            &mut dmachine,
        );
        assert!(out.status.is_success(), "{out:?}");
        let imported = dst.realm(RealmId(0)).unwrap();
        assert_eq!(imported.state(), RealmState::Active);
        assert_eq!(imported.measurement(), src);
        assert_eq!(imported.generation(), 1);
        assert_eq!(imported.data_pages(), 2);
        assert_eq!(imported.rec_count(), 1);
        // The rebuilt RTT resolves the migrated pages.
        assert!(imported.rtt().translate(0x1000).is_ok());
        assert!(imported.rtt().translate(0x2000).is_ok());
        // The guest can see it moved.
        match dst.handle_rsi(RealmId(0), cg_cca::RsiCall::MigrationInfo) {
            cg_cca::RsiResult::MigrationInfo { generation } => assert_eq!(generation, 1),
            other => panic!("unexpected {other:?}"),
        }
        // And it can run: dedicate a core and enter the migrated vCPU.
        dmachine.cpu_mut(CoreId(4)).offline();
        dst.dedicate_core(CoreId(4), &mut dmachine).unwrap();
        let out = dst.rec_enter_with_list(CoreId(4), RecId::new(RealmId(0), 0), &[], &mut dmachine);
        assert!(out.status.is_success(), "{out:?}");
    }

    #[test]
    fn tampered_import_rejected_and_audited() {
        let (mut rmm, mut machine) = setup();
        let (mut blob, src) = export_blob(&mut rmm, &mut machine);
        blob.tamper();
        let (mut dst, mut dmachine) = setup();
        for n in 10..40 {
            dmachine.memory_mut().delegate(g(n)).unwrap();
        }
        dst.stage_migration_blob(blob);
        let out = dst.handle_rmi(
            CoreId(0),
            RmiCall::MigrationImport {
                rd: g(10),
                src_lo: src.0[0],
                src_hi: src.0[1],
            },
            &mut dmachine,
        );
        assert_eq!(out.status, RmiStatus::ErrorMeasurement);
        assert_eq!(dst.counters().get("rmm.migrate.import_rejected"), 1);
        assert_eq!(dst.realm_count(), 0, "no realm state left behind");
    }

    #[test]
    fn import_with_wrong_expected_measurement_rejected() {
        let (mut rmm, mut machine) = setup();
        let (blob, _) = export_blob(&mut rmm, &mut machine);
        let (mut dst, mut dmachine) = setup();
        for n in 10..40 {
            dmachine.memory_mut().delegate(g(n)).unwrap();
        }
        dst.stage_migration_blob(blob);
        let wrong = Measurement::of(b"not the source realm");
        let out = dst.handle_rmi(
            CoreId(0),
            RmiCall::MigrationImport {
                rd: g(10),
                src_lo: wrong.0[0],
                src_hi: wrong.0[1],
            },
            &mut dmachine,
        );
        assert_eq!(out.status, RmiStatus::ErrorMeasurement);
        assert_eq!(dst.counters().get("rmm.migrate.import_rejected"), 1);
    }

    #[test]
    fn import_with_short_granule_run_restages_blob() {
        let (mut rmm, mut machine) = setup();
        let (blob, src) = export_blob(&mut rmm, &mut machine);
        let (mut dst, mut dmachine) = setup();
        // No granules delegated yet: the import must fail on the run
        // check without consuming the blob.
        dst.stage_migration_blob(blob);
        let call = RmiCall::MigrationImport {
            rd: g(10),
            src_lo: src.0[0],
            src_hi: src.0[1],
        };
        let out = dst.handle_rmi(CoreId(0), call, &mut dmachine);
        assert_eq!(out.status, RmiStatus::ErrorGranule);
        // Fix the delegation and retry — the staged blob survived.
        for n in 10..40 {
            dmachine.memory_mut().delegate(g(n)).unwrap();
        }
        let out = dst.handle_rmi(CoreId(0), call, &mut dmachine);
        assert!(out.status.is_success(), "{out:?}");
    }

    #[test]
    fn export_requires_quiesce_and_tracking() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm_with_data(&mut rmm, &mut machine);
        // No migration_begin: refused.
        let out = rmm.handle_rmi(CoreId(0), RmiCall::MigrationExport { realm }, &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorRealm);
        assert!(rmm.migration_begin(realm));
        // A running vCPU blocks the export until the host quiesces it.
        let rec = RecId::new(realm, 0);
        rmm.rec_enter_with_list(CoreId(4), rec, &[], &mut machine);
        let out = rmm.handle_rmi(CoreId(0), RmiCall::MigrationExport { realm }, &mut machine);
        assert_eq!(out.status, RmiStatus::ErrorInUse);
        exit_via_mmio(&mut rmm, &mut machine, CoreId(4), rec);
        let out = rmm.handle_rmi(CoreId(0), RmiCall::MigrationExport { realm }, &mut machine);
        assert!(out.status.is_success(), "{out:?}");
        // Cancelling after an abort discards the blob and tracking.
        rmm.migration_cancel(realm);
        assert!(rmm.take_migration_blob().is_none());
        assert!(!rmm.realm(realm).unwrap().dirty_tracking());
    }

    #[test]
    fn data_create_measures_and_maps() {
        let (mut rmm, mut machine) = setup();
        let realm = build_realm(&mut rmm, &mut machine);
        let rim_before = rmm.realm(realm).unwrap().measurement();
        // Need RTT chain before data can be mapped: create tables 1..3.
        for (lvl, n) in [(1u8, 20u64), (2, 21), (3, 22)] {
            let out = rmm.handle_rmi(
                CoreId(0),
                RmiCall::RttCreate {
                    realm,
                    rtt: g(n),
                    ipa: 0,
                    level: cg_cca::RttLevel(lvl),
                },
                &mut machine,
            );
            assert!(out.status.is_success(), "level {lvl}: {out:?}");
        }
        // Realm is already Active: DATA_CREATE must fail (post-activation
        // pages go through a different path not modelled here).
        let out = rmm.handle_rmi(
            CoreId(0),
            RmiCall::DataCreate {
                realm,
                data: g(23),
                ipa: 0x1000,
            },
            &mut machine,
        );
        assert_eq!(out.status, RmiStatus::ErrorRealm);
        let _ = rim_before;
    }
}
