//! Property tests for the RMM's RMI state machine: arbitrary host-issued
//! command sequences never corrupt granule accounting or core bindings.

use std::collections::BTreeSet;

use cg_cca::{RecId, RmiCall, RmiStatus};
use cg_machine::{CoreId, GranuleAddr, HwParams, Machine, RealmId};
use cg_rmm::{DirtyBitmap, Rmm, RmmConfig};
use proptest::prelude::*;

fn g(n: u64) -> GranuleAddr {
    GranuleAddr::new(0x100_0000 + n * 4096).unwrap()
}

proptest! {
    /// A hostile hypervisor replaying arbitrary granule delegate /
    /// undelegate / realm-create sequences can never make the RMM panic
    /// or leak granules: every success is consistent with the granule
    /// state machine.
    #[test]
    fn rmi_granule_fuzz(ops in prop::collection::vec((0u8..3, 0u64..24), 1..200)) {
        let mut rmm = Rmm::new(RmmConfig::core_gapped());
        let mut machine = Machine::new(HwParams::small()).unwrap();
        let core = CoreId(0);
        for (kind, idx) in ops {
            let call = match kind {
                0 => RmiCall::GranuleDelegate { addr: g(idx) },
                1 => RmiCall::GranuleUndelegate { addr: g(idx) },
                _ => RmiCall::RealmCreate { rd: g(idx), num_recs: 1 },
            };
            let out = rmm.handle_rmi(core, call, &mut machine);
            // Every outcome is a defined status; no panics, and failures
            // leave the state untouched (validated by the accounting
            // invariant below).
            let _ = out.status;
        }
    }

    /// Whatever dispatch order the host tries, the binding invariants
    /// hold: one core per vCPU, one realm per core — and a vCPU entered
    /// on the wrong core always gets ErrorCoreBinding, never entry.
    #[test]
    fn hostile_dispatch_never_coschedules(
        attempts in prop::collection::vec((0u32..3, 0u32..2, 0u16..4), 1..60)
    ) {
        let mut rmm = Rmm::new(RmmConfig::core_gapped());
        let mut machine = Machine::new(HwParams::small()).unwrap();
        // Three single-vCPU realms, two RECs each at most.
        for n in 0..40 {
            machine.memory_mut().delegate(g(n)).unwrap();
        }
        for r in 0..3u64 {
            let rd = g(r * 10);
            let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmCreate { rd, num_recs: 2 }, &mut machine);
            prop_assert!(out.status.is_success());
            for i in 0..2u64 {
                let out = rmm.handle_rmi(
                    CoreId(0),
                    RmiCall::RecCreate {
                        realm: RealmId(r as u32),
                        index: i as u32,
                        rec: g(r * 10 + 2 + i),
                    },
                    &mut machine,
                );
                prop_assert!(out.status.is_success());
            }
            let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmActivate { realm: RealmId(r as u32) }, &mut machine);
            prop_assert!(out.status.is_success());
        }
        for c in 4..8u16 {
            machine.cpu_mut(CoreId(c)).offline();
            rmm.dedicate_core(CoreId(c), &mut machine).unwrap();
        }
        for (realm, vcpu, core_off) in attempts {
            let rec = RecId::new(RealmId(realm), vcpu);
            let core = CoreId(4 + core_off);
            let out = rmm.rec_enter_with_list(core, rec, &[], &mut machine);
            if out.status == RmiStatus::Success {
                // Exit immediately so the REC can be re-entered later.
                rmm.on_guest_event(core, rec, cg_rmm::GuestEvent::HostCall { imm: 0 }, &mut machine);
            }
            // Invariants after every attempt:
            let bindings = rmm.coregap().bindings_snapshot();
            let mut per_core: std::collections::BTreeMap<CoreId, RealmId> = Default::default();
            for (r, c) in bindings {
                if let Some(owner) = per_core.insert(c, r.realm) {
                    prop_assert_eq!(owner, r.realm, "two realms bound to {}", c);
                }
                prop_assert_eq!(rmm.coregap().core_owner(c), Some(r.realm));
            }
        }
    }

    /// The dirty bitmap agrees with a reference set model under any
    /// interleaving of set / clear / snapshot-and-reset: membership,
    /// counts, and the return values of every mutation round-trip.
    #[test]
    fn dirty_bitmap_matches_set_model(ops in prop::collection::vec((0u8..3, 0u64..64), 1..300)) {
        let mut bitmap = DirtyBitmap::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for (kind, page) in ops {
            let ipa = page * 4096;
            match kind {
                0 => prop_assert_eq!(bitmap.set(ipa), model.insert(ipa)),
                1 => prop_assert_eq!(bitmap.clear(ipa), model.remove(&ipa)),
                _ => {
                    // A snapshot drains the live set sorted by IPA and
                    // leaves it empty — exactly what the model drains.
                    let snap = bitmap.snapshot_and_reset();
                    let expect: Vec<u64> = std::mem::take(&mut model).into_iter().collect();
                    prop_assert_eq!(snap, expect);
                    prop_assert!(bitmap.is_empty());
                }
            }
            prop_assert_eq!(bitmap.len(), model.len());
            prop_assert_eq!(bitmap.is_set(ipa), model.contains(&ipa));
        }
    }

    /// Pre-copy's convergence contract: writes landing *during* a copy
    /// round never appear in that round's transfer set, always in the
    /// next one — and every write appears in exactly one round (or the
    /// final residual) no matter how writes interleave with rounds.
    #[test]
    fn write_during_round_lands_in_next_round(
        rounds in prop::collection::vec(prop::collection::vec(0u64..32, 0..20), 1..10)
    ) {
        let mut bitmap = DirtyBitmap::new();
        let mut pending: BTreeSet<u64> = BTreeSet::new();
        for writes in rounds {
            // The round snapshot must be exactly the writes that landed
            // before it — none of the writes issued during it.
            let snap = bitmap.snapshot_and_reset();
            let expect: Vec<u64> = std::mem::take(&mut pending).into_iter().collect();
            prop_assert_eq!(snap, expect);
            for page in writes {
                let ipa = page * 4096;
                bitmap.set(ipa);
                pending.insert(ipa);
            }
        }
        // Whatever is still dirty is the stop-and-copy residual: the
        // writes of the last window, nothing more, nothing less.
        let residual = bitmap.snapshot_and_reset();
        let expect: Vec<u64> = pending.into_iter().collect();
        prop_assert_eq!(residual, expect);
        prop_assert!(bitmap.is_empty());
    }
}
