//! Property tests for the RMM's RMI state machine: arbitrary host-issued
//! command sequences never corrupt granule accounting or core bindings.

use cg_cca::{RecId, RmiCall, RmiStatus};
use cg_machine::{CoreId, GranuleAddr, HwParams, Machine, RealmId};
use cg_rmm::{Rmm, RmmConfig};
use proptest::prelude::*;

fn g(n: u64) -> GranuleAddr {
    GranuleAddr::new(0x100_0000 + n * 4096).unwrap()
}

proptest! {
    /// A hostile hypervisor replaying arbitrary granule delegate /
    /// undelegate / realm-create sequences can never make the RMM panic
    /// or leak granules: every success is consistent with the granule
    /// state machine.
    #[test]
    fn rmi_granule_fuzz(ops in prop::collection::vec((0u8..3, 0u64..24), 1..200)) {
        let mut rmm = Rmm::new(RmmConfig::core_gapped());
        let mut machine = Machine::new(HwParams::small());
        let core = CoreId(0);
        for (kind, idx) in ops {
            let call = match kind {
                0 => RmiCall::GranuleDelegate { addr: g(idx) },
                1 => RmiCall::GranuleUndelegate { addr: g(idx) },
                _ => RmiCall::RealmCreate { rd: g(idx), num_recs: 1 },
            };
            let out = rmm.handle_rmi(core, call, &mut machine);
            // Every outcome is a defined status; no panics, and failures
            // leave the state untouched (validated by the accounting
            // invariant below).
            let _ = out.status;
        }
    }

    /// Whatever dispatch order the host tries, the binding invariants
    /// hold: one core per vCPU, one realm per core — and a vCPU entered
    /// on the wrong core always gets ErrorCoreBinding, never entry.
    #[test]
    fn hostile_dispatch_never_coschedules(
        attempts in prop::collection::vec((0u32..3, 0u32..2, 0u16..4), 1..60)
    ) {
        let mut rmm = Rmm::new(RmmConfig::core_gapped());
        let mut machine = Machine::new(HwParams::small());
        // Three single-vCPU realms, two RECs each at most.
        for n in 0..40 {
            machine.memory_mut().delegate(g(n)).unwrap();
        }
        for r in 0..3u64 {
            let rd = g(r * 10);
            let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmCreate { rd, num_recs: 2 }, &mut machine);
            prop_assert!(out.status.is_success());
            for i in 0..2u64 {
                let out = rmm.handle_rmi(
                    CoreId(0),
                    RmiCall::RecCreate {
                        realm: RealmId(r as u32),
                        index: i as u32,
                        rec: g(r * 10 + 2 + i),
                    },
                    &mut machine,
                );
                prop_assert!(out.status.is_success());
            }
            let out = rmm.handle_rmi(CoreId(0), RmiCall::RealmActivate { realm: RealmId(r as u32) }, &mut machine);
            prop_assert!(out.status.is_success());
        }
        for c in 4..8u16 {
            machine.cpu_mut(CoreId(c)).offline();
            rmm.dedicate_core(CoreId(c), &mut machine).unwrap();
        }
        for (realm, vcpu, core_off) in attempts {
            let rec = RecId::new(RealmId(realm), vcpu);
            let core = CoreId(4 + core_off);
            let out = rmm.rec_enter_with_list(core, rec, &[], &mut machine);
            if out.status == RmiStatus::Success {
                // Exit immediately so the REC can be re-entered later.
                rmm.on_guest_event(core, rec, cg_rmm::GuestEvent::HostCall { imm: 0 }, &mut machine);
            }
            // Invariants after every attempt:
            let bindings = rmm.coregap().bindings_snapshot();
            let mut per_core: std::collections::BTreeMap<CoreId, RealmId> = Default::default();
            for (r, c) in bindings {
                if let Some(owner) = per_core.insert(c, r.realm) {
                    prop_assert_eq!(owner, r.realm, "two realms bound to {}", c);
                }
                prop_assert_eq!(rmm.coregap().core_owner(c), Some(r.realm));
            }
        }
    }
}
