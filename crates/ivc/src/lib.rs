//! Attested inter-CVM shared-memory channels (IVC) for core-gapped
//! realms.
//!
//! The paper's core-gapped CVMs eliminate host-shared cores, but
//! realm-to-realm traffic that bounces through the host I/O plane
//! re-introduces the host as a copy/latency bottleneck — and as a
//! notification forger (Heckler). This crate models the CAEC-style
//! alternative: a point-to-point shared-memory channel between two
//! realms, brokered by the RMM.
//!
//! Three pieces live here, shared by the RMM (control plane) and the
//! execution engine (data plane):
//!
//! - [`PairPolicy`] — the attestation gate. The channel owner registers
//!   which *pairs of realm measurements* may share memory; the RMM
//!   consults the policy during `IVC_CHANNEL_CREATE` and refuses to map
//!   the window for any unapproved pair. Pairs are unordered: approving
//!   (a, b) also approves (b, a).
//! - [`MsgRing`] — the data plane. A single-producer single-consumer
//!   message ring over the shared window using the same free-running
//!   u16 index arithmetic as `cg-virtio`, including EVENT_IDX-style
//!   doorbell suppression: the receiver arms a doorbell event when it
//!   idles, and the sender rings only when its publish crosses the
//!   armed index. A dropped doorbell therefore strands the ring exactly
//!   the way a dropped virtio kick strands a queue — and is healed by
//!   the same watchdog-rescan idiom.
//! - [`Channel`] / [`Endpoint`] — the RMM-side registration used to
//!   validate injected doorbells: a doorbell for channel `c` is
//!   delivered only when it arrives at the (core, vCPU) registered as
//!   one of `c`'s endpoints; anything else is a host forgery and is
//!   dropped and counted.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;

use cg_cca::Measurement;
use cg_machine::{CoreId, GranuleAddr, RealmId};
use cg_sim::TraceCtx;
use cg_virtio::need_event;

/// Granules in one channel window: one for each direction's ring
/// header/descriptors plus two payload granules. The simulation models
/// occupancy, not bytes, so the constant only sizes the RTT mapping
/// work during channel setup.
pub const IVC_WINDOW_GRANULES: u64 = 4;

/// One message in flight on a ring: the simulation-level stand-in for a
/// payload in the shared window (bytes are modelled, contents are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvcMsg {
    /// Payload size in bytes (drives the modelled copy cost).
    pub bytes: u64,
    /// Sender-assigned sequence number, echoed to the receiver.
    pub seq: u64,
    /// Causal trace context riding the message from publish to drain.
    /// Purely observational: never read by ring logic, `NULL` when
    /// tracing is off.
    pub ctx: TraceCtx,
}

impl IvcMsg {
    /// An untraced message of `bytes` bytes with sequence number `seq`.
    pub fn new(bytes: u64, seq: u64) -> IvcMsg {
        IvcMsg {
            bytes,
            seq,
            ctx: TraceCtx::NULL,
        }
    }

    /// The same message carrying causal context `ctx`.
    pub fn with_ctx(mut self, ctx: TraceCtx) -> IvcMsg {
        self.ctx = ctx;
        self
    }
}

/// The ring rejected a publish because every slot is occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl fmt::Display for RingFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ivc ring full")
    }
}

impl std::error::Error for RingFull {}

/// Doorbell/occupancy statistics for one ring direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Messages published by the sender.
    pub published: u64,
    /// Messages drained by the receiver.
    pub drained: u64,
    /// Doorbells the sender actually rang.
    pub doorbells: u64,
    /// Publishes whose doorbell was suppressed (receiver still awake).
    pub doorbells_suppressed: u64,
}

/// A single-producer single-consumer message ring over the shared
/// window — one direction of a channel.
///
/// Index arithmetic is free-running modulo 2^16, exactly as in
/// `cg-virtio`: `pub_idx` counts publishes, `drain_idx` counts drains,
/// and the receiver arms `doorbell_event` at its current `drain_idx`
/// when it goes idle. [`MsgRing::should_ring`] then applies the shared
/// [`need_event`] predicate so consecutive publishes into an already
/// woken receiver coalesce into zero doorbells.
///
/// # Example
///
/// ```
/// use cg_ivc::{IvcMsg, MsgRing};
///
/// let mut ring = MsgRing::new(8);
/// ring.arm(); // receiver idle: next publish must ring
/// ring.publish(IvcMsg::new(64, 0)).unwrap();
/// assert!(ring.should_ring());
/// ring.publish(IvcMsg::new(64, 1)).unwrap();
/// assert!(!ring.should_ring()); // receiver already woken: coalesced
/// assert_eq!(ring.drain().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MsgRing {
    cap: u16,
    queue: VecDeque<IvcMsg>,
    pub_idx: u16,
    drain_idx: u16,
    doorbell_event: u16,
    ring_cursor: u16,
    armed: bool,
    stats: RingStats,
}

impl MsgRing {
    /// Creates an empty ring holding at most `cap` messages.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or not a power of two (mirroring the
    /// virtqueue-size rule, since the window layout is ring-shaped).
    pub fn new(cap: u16) -> MsgRing {
        MsgRing::seeded_at(cap, 0)
    }

    /// As [`MsgRing::new`], but starts the free-running indices at
    /// `start` — lets tests sit the indices right below the 2^16 wrap.
    pub fn seeded_at(cap: u16, start: u16) -> MsgRing {
        assert!(
            cap != 0 && cap.is_power_of_two(),
            "ivc ring capacity must be a non-zero power of two"
        );
        MsgRing {
            cap,
            queue: VecDeque::new(),
            pub_idx: start,
            drain_idx: start,
            doorbell_event: start,
            ring_cursor: start,
            armed: true,
            stats: RingStats::default(),
        }
    }

    /// Messages published but not yet drained.
    pub fn pending(&self) -> u16 {
        self.pub_idx.wrapping_sub(self.drain_idx)
    }

    /// True when no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u16 {
        self.cap
    }

    /// Publishes one message into the shared window.
    ///
    /// # Errors
    ///
    /// [`RingFull`] when all `cap` slots hold undrained messages.
    pub fn publish(&mut self, msg: IvcMsg) -> Result<(), RingFull> {
        if self.pending() >= self.cap {
            return Err(RingFull);
        }
        self.queue.push_back(msg);
        self.pub_idx = self.pub_idx.wrapping_add(1);
        self.stats.published += 1;
        Ok(())
    }

    /// Decides (and records) whether the publishes since the last call
    /// must ring the peer's doorbell. Call once after each publish
    /// batch; like `VirtQueue::should_kick` the decision consumes the
    /// window, so asking twice never double-rings.
    pub fn should_ring(&mut self) -> bool {
        let old = self.ring_cursor;
        self.ring_cursor = self.pub_idx;
        let ring = self.armed && need_event(self.doorbell_event, self.pub_idx, old);
        if ring {
            // The peer is now considered woken until it re-arms.
            self.armed = false;
            self.stats.doorbells += 1;
        } else {
            self.stats.doorbells_suppressed += 1;
        }
        ring
    }

    /// Drains every in-flight message, in publish order.
    pub fn drain(&mut self) -> Vec<IvcMsg> {
        let msgs: Vec<IvcMsg> = self.queue.drain(..).collect();
        self.drain_idx = self.drain_idx.wrapping_add(msgs.len() as u16);
        self.stats.drained += msgs.len() as u64;
        msgs
    }

    /// Receiver went idle: arm the doorbell at the current drain index
    /// so the next publish rings. Idempotent.
    pub fn arm(&mut self) {
        self.doorbell_event = self.drain_idx;
        self.armed = true;
    }

    /// Doorbell/occupancy statistics.
    pub fn stats(&self) -> RingStats {
        self.stats
    }
}

/// The RMM's attestation gate for channel creation: an explicit list of
/// unordered realm-measurement pairs approved (out of band, by the
/// realm owners) to share a window.
#[derive(Debug, Clone, Default)]
pub struct PairPolicy {
    allowed: Vec<(Measurement, Measurement)>,
}

impl PairPolicy {
    /// An empty policy: every pair is refused.
    pub fn new() -> PairPolicy {
        PairPolicy::default()
    }

    /// Approves the unordered pair `(a, b)`. Idempotent.
    pub fn allow(&mut self, a: Measurement, b: Measurement) {
        if !self.permits(a, b) {
            // Canonicalize on the raw words so (a, b) and (b, a)
            // occupy one entry.
            if a.0 <= b.0 {
                self.allowed.push((a, b));
            } else {
                self.allowed.push((b, a));
            }
        }
    }

    /// True when the unordered pair `(a, b)` has been approved.
    pub fn permits(&self, a: Measurement, b: Measurement) -> bool {
        self.allowed
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Number of approved pairs.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// True when no pair has been approved.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// The approved pairs, each in canonical (low, high) order — for
    /// mirroring the policy onto another node ahead of a migration.
    pub fn pairs(&self) -> impl Iterator<Item = (Measurement, Measurement)> + '_ {
        self.allowed.iter().copied()
    }
}

/// Static parameters of one channel, fixed at `IVC_CHANNEL_CREATE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Channel identifier, unique within the machine.
    pub channel: u32,
    /// The delegated doorbell SPI notifying both endpoints.
    pub spi: u32,
    /// Base of the granule-aligned shared window (physical).
    pub window: GranuleAddr,
}

/// One registered endpoint of a channel: the realm, the vCPU that owns
/// the doorbell, and the dedicated core that vCPU is bound to. Doorbell
/// validation matches on the *(core, vCPU)* pair — the host controls
/// interrupt routing, so the arrival core is the one thing it can
/// falsify and the one thing the RMM must check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The realm on this side of the channel.
    pub realm: RealmId,
    /// The vCPU index owning the doorbell within that realm.
    pub vcpu: u32,
    /// The dedicated core the owner vCPU runs on.
    pub core: CoreId,
}

/// The RMM-side registration of one established channel: config plus
/// both validated endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Static channel parameters.
    pub cfg: ChannelConfig,
    /// First endpoint (creation-order; no semantic priority).
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
}

impl Channel {
    /// The endpoint registered on `core`, if any — the Heckler check: a
    /// doorbell with this channel's SPI arriving anywhere else is a
    /// host forgery.
    pub fn endpoint_at(&self, core: CoreId) -> Option<Endpoint> {
        if self.a.core == core {
            Some(self.a)
        } else if self.b.core == core {
            Some(self.b)
        } else {
            None
        }
    }

    /// True when `core` hosts one of the two endpoints.
    pub fn is_endpoint_core(&self, core: CoreId) -> bool {
        self.endpoint_at(core).is_some()
    }

    /// The peer realm of `realm`, if `realm` is an endpoint.
    pub fn peer_of(&self, realm: RealmId) -> Option<RealmId> {
        if self.a.realm == realm {
            Some(self.b.realm)
        } else if self.b.realm == realm {
            Some(self.a.realm)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u64) -> IvcMsg {
        IvcMsg::new(64, seq)
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let mut r = MsgRing::new(4);
        for i in 0..4 {
            r.publish(msg(i)).unwrap();
        }
        assert_eq!(r.publish(msg(9)), Err(RingFull));
        assert_eq!(r.pending(), 4);
        let drained = r.drain();
        assert_eq!(
            drained.iter().map(|m| m.seq).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert_eq!(r.pending(), 0);
        r.publish(msg(9)).unwrap();
    }

    #[test]
    fn doorbells_coalesce_until_rearm() {
        let mut r = MsgRing::new(8);
        r.publish(msg(0)).unwrap();
        assert!(r.should_ring(), "first publish after arm rings");
        for i in 1..5 {
            r.publish(msg(i)).unwrap();
            assert!(!r.should_ring(), "publish {i} coalesces");
        }
        assert_eq!(r.drain().len(), 5);
        r.arm();
        r.publish(msg(5)).unwrap();
        assert!(r.should_ring(), "re-armed: next publish rings again");
        assert_eq!(r.stats().doorbells, 2);
        assert_eq!(r.stats().doorbells_suppressed, 4);
    }

    #[test]
    fn doorbell_fires_across_u16_wrap() {
        let mut r = MsgRing::seeded_at(8, u16::MAX);
        r.publish(msg(0)).unwrap(); // pub_idx wraps MAX -> 0
        assert!(r.should_ring(), "wrap boundary must still ring");
        assert_eq!(r.pending(), 1);
        assert_eq!(r.drain().len(), 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn should_ring_never_double_rings() {
        let mut r = MsgRing::new(8);
        r.publish(msg(0)).unwrap();
        assert!(r.should_ring());
        assert!(!r.should_ring(), "decision window consumed");
    }

    #[test]
    fn pair_policy_is_unordered_and_idempotent() {
        let a = Measurement::of(b"realm a");
        let b = Measurement::of(b"realm b");
        let c = Measurement::of(b"realm c");
        let mut p = PairPolicy::new();
        assert!(p.is_empty());
        assert!(!p.permits(a, b));
        p.allow(a, b);
        p.allow(b, a); // same unordered pair
        assert_eq!(p.len(), 1);
        assert!(p.permits(a, b));
        assert!(p.permits(b, a));
        assert!(!p.permits(a, c), "unapproved pair stays refused");
        assert!(!p.permits(a, a), "self-pair not implied");
    }

    #[test]
    fn channel_validates_endpoint_cores() {
        let ch = Channel {
            cfg: ChannelConfig {
                channel: 1,
                spi: 40,
                window: GranuleAddr::new(0xC_0000_0000).unwrap(),
            },
            a: Endpoint {
                realm: RealmId(0),
                vcpu: 0,
                core: CoreId(1),
            },
            b: Endpoint {
                realm: RealmId(1),
                vcpu: 0,
                core: CoreId(2),
            },
        };
        assert_eq!(ch.endpoint_at(CoreId(1)).unwrap().realm, RealmId(0));
        assert_eq!(ch.endpoint_at(CoreId(2)).unwrap().realm, RealmId(1));
        assert!(
            ch.endpoint_at(CoreId(3)).is_none(),
            "forged target rejected"
        );
        assert_eq!(ch.peer_of(RealmId(0)), Some(RealmId(1)));
        assert_eq!(ch.peer_of(RealmId(2)), None);
    }
}
