//! The IPI doorbell used by asynchronous run-call returns.
//!
//! Arm provides 16 SGI numbers and Linux already reserves 7, so the
//! prototype allocates exactly **one** additional IPI as the CVM-exit
//! notification (paper §4.3). One interrupt cannot convey *which* vCPU
//! exited, so the handler activates a wake-up thread that scans all run
//! channels — and consecutive exits coalesce onto an already-pending
//! doorbell. This module models that coalescing.

use cg_machine::CoreId;

/// A single-IPI doorbell with coalescing.
///
/// # Example
///
/// ```
/// use cg_machine::CoreId;
/// use cg_rpc::Doorbell;
///
/// let mut bell = Doorbell::new(CoreId(0));
/// assert!(bell.ring());       // first ring sends a physical IPI
/// assert!(!bell.ring());      // second ring coalesces
/// assert!(bell.acknowledge());
/// assert!(bell.ring());       // after ack, a new IPI is needed
/// ```
#[derive(Debug, Clone)]
pub struct Doorbell {
    target: CoreId,
    pending: bool,
    rings: u64,
    ipis_sent: u64,
}

impl Doorbell {
    /// Creates a doorbell targeting `target` (the host core running the
    /// wake-up thread).
    pub fn new(target: CoreId) -> Doorbell {
        Doorbell {
            target,
            pending: false,
            rings: 0,
            ipis_sent: 0,
        }
    }

    /// The core the doorbell IPI targets.
    pub fn target(&self) -> CoreId {
        self.target
    }

    /// Retargets the doorbell (e.g. after the wake-up thread migrates).
    pub fn set_target(&mut self, target: CoreId) {
        self.target = target;
    }

    /// Rings the doorbell. Returns `true` if a physical IPI must be sent
    /// (i.e. the doorbell was not already pending); `false` if this ring
    /// coalesced with a pending one.
    pub fn ring(&mut self) -> bool {
        self.rings += 1;
        if self.pending {
            false
        } else {
            self.pending = true;
            self.ipis_sent += 1;
            true
        }
    }

    /// The interrupt handler acknowledges the doorbell, allowing the next
    /// ring to raise a fresh IPI. Returns `true` if it was pending.
    pub fn acknowledge(&mut self) -> bool {
        std::mem::replace(&mut self.pending, false)
    }

    /// Returns `true` if an IPI is pending (rung, not yet acknowledged).
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Total rings requested (including coalesced ones).
    pub fn rings(&self) -> u64 {
        self.rings
    }

    /// Physical IPIs actually sent.
    pub fn ipis_sent(&self) -> u64 {
        self.ipis_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing() {
        let mut b = Doorbell::new(CoreId(1));
        assert!(b.ring());
        assert!(!b.ring());
        assert!(!b.ring());
        assert_eq!(b.rings(), 3);
        assert_eq!(b.ipis_sent(), 1);
        assert!(b.is_pending());
    }

    #[test]
    fn ack_rearms() {
        let mut b = Doorbell::new(CoreId(0));
        b.ring();
        assert!(b.acknowledge());
        assert!(!b.acknowledge());
        assert!(!b.is_pending());
        assert!(b.ring());
        assert_eq!(b.ipis_sent(), 2);
    }

    #[test]
    fn retargeting() {
        let mut b = Doorbell::new(CoreId(0));
        assert_eq!(b.target(), CoreId(0));
        b.set_target(CoreId(5));
        assert_eq!(b.target(), CoreId(5));
    }
}
