//! Closed-form latency decompositions of the RPC transports.
//!
//! These functions document exactly which [`HwParams`] components make up
//! each measured path, and serve as the calibration reference for the
//! event-driven implementation in `cg-core` (whose microbenchmarks must
//! agree with these sums). The targets come from the paper's table 2.

use cg_machine::HwParams;
use cg_sim::SimDuration;

/// Expected delay between a value becoming visible on a polled cache line
/// and the poller noticing it: on average half a poll-loop iteration.
pub fn poll_notice_delay(params: &HwParams) -> SimDuration {
    params.poll_iteration / 2
}

/// One-way cost of posting a value and having a busy-waiting peer pick it
/// up: descriptor write, cache-line transfer, poll phase.
pub fn post_to_notice(params: &HwParams) -> SimDuration {
    params.mailbox_write + params.cache_line_transfer + poll_notice_delay(params)
}

/// Round-trip latency of a null synchronous remote RMM call
/// (table 2: 257.7 ns): client posts and busy-waits; the dedicated RMM
/// core polls, handles (null), posts the response; client notices.
pub fn sync_call_round_trip(params: &HwParams) -> SimDuration {
    post_to_notice(params) + post_to_notice(params)
}

/// The asynchronous return path from a vCPU exit to the vCPU thread
/// resuming on the host (fig. 4, steps ①–⑤): exit record write, doorbell
/// IPI, interrupt entry, wake-up thread activation, channel scan, vCPU
/// thread context switch, exit-record read.
pub fn async_return_path(params: &HwParams) -> SimDuration {
    params.mailbox_write
        + params.ipi_deliver
        + params.irq_entry
        + params.sched_wakeup
        + params.cache_line_transfer * 2 // wake-up thread scans the run channels
        + params.context_switch
        + params.cache_line_transfer // vCPU thread reads the exit record
}

/// Round-trip latency of a null asynchronous run call
/// (table 2: 2757.6 ns): request leg as a posted call picked up by the
/// polling RMM core, null handling, then the asynchronous return path.
pub fn async_null_call_round_trip(params: &HwParams) -> SimDuration {
    post_to_notice(params) + async_return_path(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts `actual` is within `pct`% of `target_ns`.
    fn assert_close(actual: SimDuration, target_ns: f64, pct: f64) {
        let a = actual.as_nanos() as f64;
        let rel = (a - target_ns).abs() / target_ns * 100.0;
        assert!(
            rel <= pct,
            "latency {a} ns deviates {rel:.1}% from target {target_ns} ns"
        );
    }

    #[test]
    fn sync_call_matches_table2() {
        let p = HwParams::ampere_one_like();
        assert_close(sync_call_round_trip(&p), 257.7, 10.0);
    }

    #[test]
    fn async_call_matches_table2() {
        let p = HwParams::ampere_one_like();
        assert_close(async_null_call_round_trip(&p), 2757.6, 10.0);
    }

    #[test]
    fn same_core_call_is_much_slower_than_remote() {
        // Table 2's headline: the remote sync call beats even a bare
        // same-core EL3 call by > 4×.
        let p = HwParams::ampere_one_like();
        let remote = sync_call_round_trip(&p);
        let same_core = p.el3_null_call();
        assert!(same_core.as_nanos() > 4 * remote.as_nanos());
    }

    #[test]
    fn async_is_slower_than_sync_but_sub_5us() {
        let p = HwParams::ampere_one_like();
        assert!(async_null_call_round_trip(&p) > sync_call_round_trip(&p));
        assert!(async_null_call_round_trip(&p) < SimDuration::micros(5));
    }
}
