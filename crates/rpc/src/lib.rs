//! # cg-rpc — cross-core shared-memory RPC
//!
//! Core gapping replaces same-core privilege transitions with remote
//! procedure calls over shared (non-secure) memory (paper §4.3). This
//! crate models the two transports the prototype uses:
//!
//! * **Synchronous calls** ([`SyncChannel`]) for short-lived RMM
//!   invocations (page-table updates, granule delegation): the client
//!   writes arguments into shared memory and busy-waits; RMM-dedicated
//!   cores poll for incoming calls. Table 2 measures this at 257.7 ns —
//!   4× faster than even a bare same-core EL3 call.
//!
//! * **Asynchronous calls** ([`SyncChannel`] plus a [`Doorbell`]) for the
//!   unbounded vCPU *run* call: the client blocks after posting; when the
//!   vCPU exits, the RMM posts the exit record and rings an IPI doorbell
//!   that activates the host's wake-up thread (fig. 4). Table 2 measures
//!   the null round trip at 2757.6 ns.
//!
//! Channels are timing-aware state machines: values posted on one core
//! become *visible* to another core only after the cache-line transfer
//! latency, and pollers notice them only at their next poll boundary. The
//! closed-form latency models in [`latency`] document (and test) the
//! decomposition used for calibration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod doorbell;
pub mod latency;
pub mod retry;

pub use channel::{ChannelError, ChannelState, SyncChannel};
pub use doorbell::Doorbell;
pub use retry::{CallAborted, RetryPolicy};
