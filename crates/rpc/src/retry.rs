//! Client-side timeout/retry policy for the async run call.
//!
//! The async transport (fig. 4) assumes the doorbell IPI arrives and the
//! channel protocol completes. Against a hostile host neither holds, so
//! the client arms a timeout when it posts a run call; when the timeout
//! fires with the call still in flight, it re-kicks the serving side and
//! re-arms with exponential backoff. A call that exhausts its retries is
//! surfaced as a typed [`CallAborted`] error — never a silently wedged
//! channel.

use std::fmt;

use cg_sim::SimDuration;

use crate::channel::ChannelState;

/// Timeout/backoff parameters for one async call.
///
/// # Example
///
/// ```
/// use cg_rpc::RetryPolicy;
/// use cg_sim::SimDuration;
///
/// let p = RetryPolicy::paper_default();
/// assert_eq!(p.timeout_for(0), p.timeout);
/// assert!(p.timeout_for(3) > p.timeout_for(2)); // exponential backoff
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Base timeout: how long the client waits for the first attempt.
    pub timeout: SimDuration,
    /// Retries before the call is aborted (attempt 0 is the original
    /// call; up to `max_retries` re-kicks follow).
    pub max_retries: u32,
    /// Backoff multiplier applied per retry (`timeout * backoff^n`).
    pub backoff: f64,
}

impl RetryPolicy {
    /// Defaults tuned for the paper's calibrated machine: the base
    /// timeout comfortably exceeds a null round trip (~2.8 µs, table 2)
    /// plus scheduling noise, and eight doubling retries span >50 ms —
    /// any call still incomplete after that is genuinely wedged.
    pub fn paper_default() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::micros(200),
            max_retries: 8,
            backoff: 2.0,
        }
    }

    /// The timeout armed for attempt `attempt` (0-based), with the
    /// exponent capped so pathological configurations cannot overflow.
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        let exp = attempt.min(24) as i32;
        self.timeout.scaled(self.backoff.max(1.0).powi(exp))
    }
}

/// An async call abandoned after exhausting its retries.
///
/// Carries the number of attempts made and the protocol phase the
/// channel was stuck in — the typed surface the proptest state machine
/// asserts against (a fault schedule must end in completion or this
/// error, never a stuck `Serving`/`Responded` channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallAborted {
    /// Attempts made, including the original call.
    pub attempts: u32,
    /// Protocol phase the call was stuck in when abandoned.
    pub phase: ChannelState,
}

impl fmt::Display for CallAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "call aborted after {} attempts (stuck in {:?})",
            self.attempts, self.phase
        )
    }
}

impl std::error::Error for CallAborted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            timeout: SimDuration::micros(100),
            max_retries: 4,
            backoff: 2.0,
        };
        assert_eq!(p.timeout_for(0), SimDuration::micros(100));
        assert_eq!(p.timeout_for(1), SimDuration::micros(200));
        assert_eq!(p.timeout_for(3), SimDuration::micros(800));
    }

    #[test]
    fn backoff_below_one_is_clamped() {
        let p = RetryPolicy {
            timeout: SimDuration::micros(100),
            max_retries: 4,
            backoff: 0.5,
        };
        assert_eq!(p.timeout_for(5), SimDuration::micros(100));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy::paper_default();
        let t = p.timeout_for(u32::MAX);
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn call_aborted_formats() {
        let e = CallAborted {
            attempts: 9,
            phase: ChannelState::Responded,
        };
        assert!(e.to_string().contains("9 attempts"));
        assert!(e.to_string().contains("Responded"));
    }
}
