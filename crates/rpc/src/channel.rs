//! The timing-aware shared-memory call channel.

use std::fmt;

use cg_machine::HwParams;
use cg_sim::{Profiler, SimTime, SpanKind, TraceCtx, TraceHandle, TraceKind};

/// Errors from channel misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// A request was posted while one was already outstanding.
    Busy,
    /// A response was posted with no request being served.
    NoRequest,
    /// An operation was attempted before the value became visible (the
    /// cache line has not yet transferred) — indicates the caller polled
    /// without honouring the visibility timestamp.
    NotVisible,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChannelError::Busy => "a request is already outstanding",
            ChannelError::NoRequest => "no request is being served",
            ChannelError::NotVisible => "value not yet visible to this core",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ChannelError {}

/// Phase of the request/response protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// No call in flight.
    Idle,
    /// A request is posted (possibly not yet visible to the server).
    Requested,
    /// The server has taken the request and is working on it.
    Serving,
    /// A response is posted (possibly not yet visible to the client).
    Responded,
}

/// A single-slot RPC channel between one client core and one server core.
///
/// The channel records *when* each value was posted; a reader on another
/// core observes it only once the cache-line transfer has elapsed. This is
/// how the simulation charges realistic costs to busy-wait RPC without
/// simulating individual poll iterations.
///
/// # Example
///
/// ```
/// use cg_machine::HwParams;
/// use cg_rpc::SyncChannel;
/// use cg_sim::SimTime;
///
/// let params = HwParams::small();
/// let mut ch: SyncChannel<u32, u32> = SyncChannel::new();
/// let t0 = SimTime::ZERO;
/// ch.post_request(7, t0).unwrap();
/// // The server can't see it immediately...
/// let visible = ch.request_visible_at(&params).unwrap();
/// assert!(visible > t0);
/// // ...but once the line has transferred, it takes the request.
/// let req = ch.take_request(visible, &params).unwrap();
/// assert_eq!(req, 7);
/// ```
#[derive(Debug)]
pub struct SyncChannel<Req, Resp> {
    state: ChannelState,
    request: Option<(Req, SimTime)>,
    response: Option<(Resp, SimTime)>,
    calls_completed: u64,
    calls_aborted: u64,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
    /// Span profiler sink (disabled by default): each async leg of a
    /// call — request posted→taken, response posted→taken — is recorded
    /// as its own span.
    profiler: Profiler,
    /// Realm/vCPU owning this channel, for trace attribution.
    owner: (u32, u32),
    /// Causal context riding the posted request slot: set by the client
    /// after posting, linking the server-side pickup into the request's
    /// trace. Purely observational — never read by protocol logic.
    req_ctx: TraceCtx,
    /// Causal context riding the posted response slot (set by the
    /// server after posting).
    resp_ctx: TraceCtx,
}

impl<Req, Resp> Default for SyncChannel<Req, Resp> {
    fn default() -> Self {
        SyncChannel::new()
    }
}

impl<Req, Resp> SyncChannel<Req, Resp> {
    /// Creates an idle channel.
    pub fn new() -> SyncChannel<Req, Resp> {
        SyncChannel {
            state: ChannelState::Idle,
            request: None,
            response: None,
            calls_completed: 0,
            calls_aborted: 0,
            trace: TraceHandle::disabled(),
            profiler: Profiler::disabled(),
            owner: (0, 0),
            req_ctx: TraceCtx::NULL,
            resp_ctx: TraceCtx::NULL,
        }
    }

    /// Attaches the causal context of the posted request (client side,
    /// immediately after [`SyncChannel::post_request`]).
    pub fn set_request_ctx(&mut self, ctx: TraceCtx) {
        self.req_ctx = ctx;
    }

    /// The causal context riding the posted request.
    pub fn request_ctx(&self) -> TraceCtx {
        self.req_ctx
    }

    /// Attaches the causal context of the posted response (server side,
    /// immediately after [`SyncChannel::post_response`]).
    pub fn set_response_ctx(&mut self, ctx: TraceCtx) {
        self.resp_ctx = ctx;
    }

    /// The causal context riding the posted response.
    pub fn response_ctx(&self) -> TraceCtx {
        self.resp_ctx
    }

    /// Attaches a structured trace, attributing records to realm `realm`
    /// / vCPU `vcpu`; protocol transitions are recorded through it from
    /// then on.
    pub fn set_trace(&mut self, trace: TraceHandle, realm: u32, vcpu: u32) {
        self.trace = trace;
        self.owner = (realm, vcpu);
    }

    /// Attaches a span profiler with the same attribution as
    /// [`SyncChannel::set_trace`].
    pub fn set_profiler(&mut self, profiler: Profiler, realm: u32, vcpu: u32) {
        self.profiler = profiler;
        self.owner = (realm, vcpu);
    }

    fn trace_transition(&self, what: &'static str) {
        let (realm, vcpu) = self.owner;
        let state = self.state;
        self.trace
            .record_vm(TraceKind::Rpc, None, Some(realm), Some(vcpu), || {
                format!("chan.{what} -> {state:?}")
            });
    }

    /// Current protocol phase.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Number of completed request/response round trips.
    pub fn calls_completed(&self) -> u64 {
        self.calls_completed
    }

    /// Number of calls abandoned mid-protocol by [`SyncChannel::abort`]
    /// or [`SyncChannel::reset`].
    pub fn calls_aborted(&self) -> u64 {
        self.calls_aborted
    }

    /// Client: posts a request at time `now`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Busy`] if a call is already in flight.
    pub fn post_request(&mut self, req: Req, now: SimTime) -> Result<(), ChannelError> {
        if self.state != ChannelState::Idle {
            return Err(ChannelError::Busy);
        }
        self.request = Some((req, now));
        self.state = ChannelState::Requested;
        self.trace_transition("post_request");
        Ok(())
    }

    /// When the posted request becomes visible to the server core.
    pub fn request_visible_at(&self, params: &HwParams) -> Option<SimTime> {
        self.request
            .as_ref()
            .map(|(_, posted)| *posted + params.cache_line_transfer)
    }

    /// Server: takes the request at time `now`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NoRequest`] if nothing is posted;
    /// [`ChannelError::NotVisible`] if the request has not yet transferred
    /// to this core.
    pub fn take_request(&mut self, now: SimTime, params: &HwParams) -> Result<Req, ChannelError> {
        if self.state != ChannelState::Requested {
            return Err(ChannelError::NoRequest);
        }
        let visible = self.request_visible_at(params).expect("state Requested");
        if now < visible {
            return Err(ChannelError::NotVisible);
        }
        let (req, posted) = self.request.take().expect("state Requested");
        self.state = ChannelState::Serving;
        self.trace_transition("take_request");
        self.profiler.record_span_child(
            SpanKind::RpcRequest,
            None,
            Some(self.owner.0),
            Some(self.owner.1),
            posted,
            now,
            self.req_ctx,
        );
        Ok(req)
    }

    /// Server: posts the response at time `now`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NoRequest`] unless a request is being served.
    pub fn post_response(&mut self, resp: Resp, now: SimTime) -> Result<(), ChannelError> {
        if self.state != ChannelState::Serving {
            return Err(ChannelError::NoRequest);
        }
        self.response = Some((resp, now));
        self.state = ChannelState::Responded;
        self.trace_transition("post_response");
        Ok(())
    }

    /// When the posted response becomes visible to the client core.
    pub fn response_visible_at(&self, params: &HwParams) -> Option<SimTime> {
        self.response
            .as_ref()
            .map(|(_, posted)| *posted + params.cache_line_transfer)
    }

    /// Client: takes the response at time `now`, completing the call.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NoRequest`] if no response is posted;
    /// [`ChannelError::NotVisible`] before the transfer completes.
    pub fn take_response(&mut self, now: SimTime, params: &HwParams) -> Result<Resp, ChannelError> {
        if self.state != ChannelState::Responded {
            return Err(ChannelError::NoRequest);
        }
        let visible = self.response_visible_at(params).expect("state Responded");
        if now < visible {
            return Err(ChannelError::NotVisible);
        }
        let (resp, posted) = self.response.take().expect("state Responded");
        self.state = ChannelState::Idle;
        self.calls_completed += 1;
        self.trace_transition("take_response");
        self.profiler.record_span_child(
            SpanKind::RpcResponse,
            None,
            Some(self.owner.0),
            Some(self.owner.1),
            posted,
            now,
            self.resp_ctx,
        );
        Ok(resp)
    }

    /// Returns `true` if a response is posted (visible or not) — used by
    /// the wake-up thread scanning channels after a doorbell IPI.
    pub fn has_response(&self) -> bool {
        self.state == ChannelState::Responded
    }

    /// Returns `true` if a request is posted (visible or not).
    pub fn has_request(&self) -> bool {
        self.state == ChannelState::Requested
    }

    /// Server: idempotently re-posts an already-posted response at time
    /// `now` — the recovery half of a client retry. Re-writing the same
    /// cache line can only *improve* visibility: the response becomes
    /// visible at the earlier of its original transfer and a fresh
    /// transfer starting now (repairing a delayed/lost first write).
    ///
    /// # Errors
    ///
    /// [`ChannelError::NoRequest`] unless a response is posted.
    pub fn repost_response(&mut self, now: SimTime) -> Result<(), ChannelError> {
        if self.state != ChannelState::Responded {
            return Err(ChannelError::NoRequest);
        }
        let (_, posted) = self.response.as_mut().expect("state Responded");
        *posted = (*posted).min(now);
        self.trace_transition("repost_response");
        Ok(())
    }

    /// Aborts an in-flight call, returning the phase it was abandoned in
    /// (`None` if the channel was already idle). Unlike the bare
    /// [`SyncChannel::reset`] this is the deliberate teardown path the
    /// KVM layer uses: the abandoned call is counted and traced so the
    /// divergence harness sees the protocol state die.
    pub fn abort(&mut self) -> Option<ChannelState> {
        if self.state == ChannelState::Idle {
            return None;
        }
        let prior = self.state;
        self.abandon("abort", prior);
        Some(prior)
    }

    /// Abandons any in-flight call (e.g. vCPU destroyed mid-exit).
    ///
    /// An abandoned in-flight call is counted in
    /// [`SyncChannel::calls_aborted`] and emits a `chan.reset` trace
    /// transition — resetting used to be silent, which left the
    /// divergence harness blind to aborted protocol state.
    pub fn reset(&mut self) {
        if self.state == ChannelState::Idle {
            self.request = None;
            self.response = None;
            return;
        }
        let prior = self.state;
        self.abandon("reset", prior);
    }

    fn abandon(&mut self, what: &'static str, prior: ChannelState) {
        self.state = ChannelState::Idle;
        self.request = None;
        self.response = None;
        self.req_ctx = TraceCtx::NULL;
        self.resp_ctx = TraceCtx::NULL;
        self.calls_aborted += 1;
        let (realm, vcpu) = self.owner;
        self.trace
            .record_vm(TraceKind::Rpc, None, Some(realm), Some(vcpu), || {
                format!("chan.{what} aborted {prior:?} -> Idle")
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_sim::SimDuration;

    fn params() -> HwParams {
        HwParams::small()
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn full_round_trip() {
        let p = params();
        let mut ch: SyncChannel<&str, &str> = SyncChannel::new();
        assert_eq!(ch.state(), ChannelState::Idle);

        ch.post_request("ping", t(0)).unwrap();
        assert_eq!(ch.state(), ChannelState::Requested);
        assert!(ch.has_request());

        let vis = ch.request_visible_at(&p).unwrap();
        assert_eq!(vis, t(0) + p.cache_line_transfer);
        assert_eq!(ch.take_request(t(1), &p), Err(ChannelError::NotVisible));
        assert_eq!(ch.take_request(vis, &p).unwrap(), "ping");
        assert_eq!(ch.state(), ChannelState::Serving);

        ch.post_response("pong", vis).unwrap();
        assert!(ch.has_response());
        let rvis = ch.response_visible_at(&p).unwrap();
        assert_eq!(ch.take_response(vis, &p), Err(ChannelError::NotVisible));
        assert_eq!(ch.take_response(rvis, &p).unwrap(), "pong");
        assert_eq!(ch.state(), ChannelState::Idle);
        assert_eq!(ch.calls_completed(), 1);
    }

    #[test]
    fn double_request_rejected() {
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        ch.post_request(1, t(0)).unwrap();
        assert_eq!(ch.post_request(2, t(5)), Err(ChannelError::Busy));
    }

    #[test]
    fn response_without_request_rejected() {
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        assert_eq!(ch.post_response(1, t(0)), Err(ChannelError::NoRequest));
        ch.post_request(1, t(0)).unwrap();
        // Still Requested, not Serving.
        assert_eq!(ch.post_response(1, t(0)), Err(ChannelError::NoRequest));
    }

    #[test]
    fn take_response_in_wrong_state_rejected() {
        let p = params();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        assert_eq!(ch.take_response(t(100), &p), Err(ChannelError::NoRequest));
        assert_eq!(ch.take_request(t(100), &p), Err(ChannelError::NoRequest));
    }

    #[test]
    fn reset_abandons_in_flight_call() {
        let p = params();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        ch.post_request(1, t(0)).unwrap();
        ch.reset();
        assert_eq!(ch.state(), ChannelState::Idle);
        ch.post_request(2, t(10)).unwrap();
        let vis = ch.request_visible_at(&p).unwrap();
        assert_eq!(ch.take_request(vis, &p).unwrap(), 2);
    }

    #[test]
    fn reset_counts_and_traces_abandoned_calls() {
        let trace = cg_sim::TraceHandle::capture();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        ch.set_trace(trace.clone(), 3, 1);
        // Idle reset: nothing abandoned, nothing counted.
        ch.reset();
        assert_eq!(ch.calls_aborted(), 0);
        // In-flight reset: counted and traced.
        ch.post_request(1, t(0)).unwrap();
        ch.reset();
        assert_eq!(ch.calls_aborted(), 1);
        let records = trace.snapshot();
        let reset_rec = records
            .iter()
            .find(|r| r.detail.contains("chan.reset"))
            .expect("reset must leave a trace record");
        assert!(
            reset_rec.detail.contains("Requested"),
            "record should name the abandoned phase: {}",
            reset_rec.detail
        );
        assert_eq!(reset_rec.realm, Some(3));
        assert_eq!(reset_rec.rec, Some(1));
    }

    #[test]
    fn abort_reports_the_abandoned_phase() {
        let p = params();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        assert_eq!(ch.abort(), None);
        ch.post_request(1, t(0)).unwrap();
        assert_eq!(ch.abort(), Some(ChannelState::Requested));
        assert_eq!(ch.state(), ChannelState::Idle);
        ch.post_request(2, t(10)).unwrap();
        let vis = ch.request_visible_at(&p).unwrap();
        ch.take_request(vis, &p).unwrap();
        ch.post_response(3, vis).unwrap();
        assert_eq!(ch.abort(), Some(ChannelState::Responded));
        assert_eq!(ch.calls_aborted(), 2);
        assert_eq!(ch.calls_completed(), 0);
    }

    #[test]
    fn repost_response_only_improves_visibility() {
        let p = params();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        assert_eq!(ch.repost_response(t(0)), Err(ChannelError::NoRequest));
        ch.post_request(1, t(0)).unwrap();
        let vis = ch.request_visible_at(&p).unwrap();
        ch.take_request(vis, &p).unwrap();
        // A (fault-delayed) future-stamped response...
        ch.post_response(2, t(10_000)).unwrap();
        let delayed = ch.response_visible_at(&p).unwrap();
        // ...re-posted now becomes visible from now.
        ch.repost_response(t(500)).unwrap();
        let repaired = ch.response_visible_at(&p).unwrap();
        assert!(repaired < delayed);
        assert_eq!(repaired, t(500) + p.cache_line_transfer);
        // Re-posting *later* than the original post is a no-op.
        ch.repost_response(t(9_999)).unwrap();
        assert_eq!(ch.response_visible_at(&p).unwrap(), repaired);
        assert_eq!(ch.take_response(repaired, &p).unwrap(), 2);
    }

    #[test]
    fn profiler_records_both_legs() {
        let p = params();
        let profiler = Profiler::capture();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        ch.set_profiler(profiler.clone(), 3, 1);
        ch.post_request(1, t(0)).unwrap();
        let vis = ch.request_visible_at(&p).unwrap();
        ch.take_request(vis, &p).unwrap();
        ch.post_response(2, vis).unwrap();
        let rvis = ch.response_visible_at(&p).unwrap();
        ch.take_response(rvis, &p).unwrap();
        let spans = profiler.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::RpcRequest);
        assert_eq!(spans[1].kind, SpanKind::RpcResponse);
        assert_eq!(spans[0].realm, Some(3));
        assert_eq!(spans[0].duration(), p.cache_line_transfer);
    }

    #[test]
    fn ctx_links_channel_legs_into_the_trace() {
        let p = params();
        let profiler = Profiler::capture();
        let mut ch: SyncChannel<u8, u8> = SyncChannel::new();
        ch.set_profiler(profiler.clone(), 1, 0);
        let (root, ctx) = profiler.begin_traced(SpanKind::ExitRoundTrip, Some(1), Some(1), Some(0));
        ch.post_request(1, t(0)).unwrap();
        ch.set_request_ctx(ctx);
        assert_eq!(ch.request_ctx(), ctx);
        let vis = ch.request_visible_at(&p).unwrap();
        ch.take_request(vis, &p).unwrap();
        profiler.end(root);
        let spans = profiler.snapshot();
        let req = spans
            .iter()
            .find(|s| s.kind == SpanKind::RpcRequest)
            .unwrap();
        assert_eq!(req.trace, ctx.trace);
        assert_eq!(req.parent, 1, "request leg parents under the root span");
        // Abandoning the call clears the carried contexts.
        ch.post_response(2, vis).unwrap();
        ch.set_response_ctx(ctx);
        ch.abort();
        assert!(ch.response_ctx().is_null());
        assert!(ch.request_ctx().is_null());
    }

    #[test]
    fn multiple_round_trips_count() {
        let p = params();
        let mut ch: SyncChannel<u64, u64> = SyncChannel::new();
        let mut now = t(0);
        for i in 0..10 {
            ch.post_request(i, now).unwrap();
            now = ch.request_visible_at(&p).unwrap();
            let r = ch.take_request(now, &p).unwrap();
            ch.post_response(r * 2, now).unwrap();
            now = ch.response_visible_at(&p).unwrap();
            assert_eq!(ch.take_response(now, &p).unwrap(), i * 2);
            now += SimDuration::nanos(50);
        }
        assert_eq!(ch.calls_completed(), 10);
    }
}
