//! Property tests for the machine model's invariants.

use cg_machine::{CoreId, Domain, HwParams, Machine, RealmId, SecretId, Structure};
use cg_sim::SimDuration;
use proptest::prelude::*;

fn domain(i: u8) -> Domain {
    match i % 3 {
        0 => Domain::Host,
        1 => Domain::Realm(RealmId(1)),
        _ => Domain::Realm(RealmId(2)),
    }
}

proptest! {
    /// Wall time never undercuts ideal work, and slowdown is bounded by
    /// the parameterised maximum.
    #[test]
    fn compute_wall_time_is_bounded(
        ops in prop::collection::vec((0u8..3, 1u64..2_000), 1..80)
    ) {
        let params = HwParams::small();
        let mut m = Machine::new(params.clone()).unwrap();
        for (who, work_us) in ops {
            let work = SimDuration::micros(work_us);
            let wall = m.run_compute(CoreId(0), domain(who), work);
            prop_assert!(wall >= work);
            prop_assert!(wall <= work.scaled(params.max_slowdown()) + SimDuration::nanos(1));
        }
    }

    /// Residency warms monotonically under own compute and never leaves
    /// [0, 1].
    #[test]
    fn residency_stays_in_unit_interval(
        ops in prop::collection::vec((0u8..3, 1u64..500), 1..100)
    ) {
        let mut m = Machine::new(HwParams::small()).unwrap();
        for (who, work_us) in ops {
            let d = domain(who);
            let before = m.microarch(CoreId(0)).l1_residency(d);
            m.run_compute(CoreId(0), d, SimDuration::micros(work_us));
            let after = m.microarch(CoreId(0)).l1_residency(d);
            prop_assert!((0.0..=1.0).contains(&after));
            prop_assert!(after >= before, "own compute never cools own state");
        }
    }

    /// Taint only accumulates with execution (never appears on untouched
    /// cores), and the mitigation flush clears exactly the structures it
    /// claims to.
    #[test]
    fn taint_is_causal(cores in prop::collection::vec(0u16..4, 1..40)) {
        let mut m = Machine::new(HwParams::small()).unwrap();
        let victim = Domain::Realm(RealmId(7));
        let mut touched = std::collections::BTreeSet::new();
        for c in cores {
            m.run_secret_compute(CoreId(c), victim, SecretId(1), SimDuration::micros(10));
            touched.insert(c);
        }
        for c in 0..4u16 {
            let leaked = !m
                .microarch(CoreId(c))
                .probe(Structure::L1d, Domain::Host)
                .is_empty();
            prop_assert_eq!(leaked, touched.contains(&c), "core {}", c);
        }
        // Flush one touched core: BP/FillBuffer clean, caches not.
        if let Some(&c) = touched.iter().next() {
            m.microarch_mut(CoreId(c)).mitigation_flush();
            prop_assert!(m.microarch(CoreId(c)).probe(Structure::BranchPredictor, Domain::Host).is_empty());
            prop_assert!(m.microarch(CoreId(c)).probe(Structure::FillBuffer, Domain::Host).is_empty());
            prop_assert!(!m.microarch(CoreId(c)).probe(Structure::L1d, Domain::Host).is_empty());
        }
    }

    /// Granule delegate/undelegate sequences preserve the accounting
    /// invariant: delegated_count equals the live delegated set.
    #[test]
    fn granule_accounting_is_exact(
        ops in prop::collection::vec((0u64..32, prop::bool::ANY), 1..200)
    ) {
        let mut m = Machine::new(HwParams::small()).unwrap();
        let mut live = std::collections::BTreeSet::new();
        for (idx, delegate) in ops {
            let g = cg_machine::GranuleAddr::new(0x10_0000 + idx * 4096).unwrap();
            if delegate {
                if m.memory_mut().delegate(g).is_ok() {
                    prop_assert!(live.insert(idx));
                } else {
                    prop_assert!(live.contains(&idx));
                }
            } else if m.memory_mut().undelegate(g).is_ok() {
                prop_assert!(live.remove(&idx));
            } else {
                prop_assert!(!live.contains(&idx));
            }
            prop_assert_eq!(m.memory().delegated_count(), live.len() as u64);
        }
    }
}
