//! Architecture-level identifiers shared across the workspace.

use std::fmt;

/// Identifies a physical CPU core.
///
/// The paper's evaluation platform (AmpereOne) has no SMT, so a "core" is
/// the unit of both execution and microarchitectural isolation; on a
/// threaded processor all sibling threads would be treated as one core for
/// core-gapping purposes (paper §4.2, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Returns the core index as a `usize` for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> CoreId {
        CoreId(v)
    }
}

/// Identifies a realm (confidential VM) at the architecture level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RealmId(pub u32);

impl RealmId {
    /// Returns the realm index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RealmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "realm{}", self.0)
    }
}

/// A security domain: the unit of mutual distrust in the threat model
/// (paper §2.4).
///
/// Microarchitectural footprints are tagged with the domain that created
/// them; a leak is an observation by one domain of another domain's
/// footprint through a structure that crosses the trust boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Untrusted host software: hypervisor, host kernel, VMM.
    Host,
    /// The trusted security monitor (RMM). Trusted by host and all guests.
    Monitor,
    /// A confidential VM. Distrusts the host and all other realms.
    Realm(RealmId),
}

impl Domain {
    /// Returns `true` if footprints flowing from `self` to `observer`
    /// cross a trust boundary (i.e. would constitute a leak).
    ///
    /// The monitor is trusted by everyone, so monitor footprints are not
    /// leaks; and a domain observing its own footprint is not a leak.
    pub fn leaks_to(self, observer: Domain) -> bool {
        match (self, observer) {
            (a, b) if a == b => false,
            (Domain::Monitor, _) => false,
            // Anything the untrusted host or another realm can observe of a
            // realm is a leak; host state observed by a realm is also a
            // leak (of host secrets) under mutual distrust.
            _ => true,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Host => write!(f, "host"),
            Domain::Monitor => write!(f, "monitor"),
            Domain::Realm(r) => write!(f, "{r}"),
        }
    }
}

/// Identifies a secret value in the leakage analysis.
///
/// Attack scenarios in `cg-attacks` plant secrets inside a victim domain;
/// the taint machinery tracks which microarchitectural footprints are
/// secret-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SecretId(pub u64);

impl fmt::Display for SecretId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "secret#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_self_observation_is_not_a_leak() {
        let r = Domain::Realm(RealmId(1));
        assert!(!r.leaks_to(r));
        assert!(!Domain::Host.leaks_to(Domain::Host));
    }

    #[test]
    fn monitor_footprints_never_leak() {
        assert!(!Domain::Monitor.leaks_to(Domain::Host));
        assert!(!Domain::Monitor.leaks_to(Domain::Realm(RealmId(0))));
    }

    #[test]
    fn cross_domain_observation_is_a_leak() {
        let a = Domain::Realm(RealmId(1));
        let b = Domain::Realm(RealmId(2));
        assert!(a.leaks_to(b));
        assert!(a.leaks_to(Domain::Host));
        assert!(Domain::Host.leaks_to(a));
        // Even the monitor observing a realm counts: the monitor never
        // probes, but the relation is about information flow.
        assert!(a.leaks_to(Domain::Monitor));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(3).to_string(), "cpu3");
        assert_eq!(RealmId(2).to_string(), "realm2");
        assert_eq!(Domain::Realm(RealmId(2)).to_string(), "realm2");
        assert_eq!(Domain::Host.to_string(), "host");
        assert_eq!(SecretId(7).to_string(), "secret#7");
    }

    #[test]
    fn core_id_index_round_trip() {
        assert_eq!(CoreId::from(5).index(), 5);
    }
}
