//! The aggregate machine: cores + microarchitectural state + memory +
//! interrupt controller + timers.

use std::collections::BTreeSet;

use cg_sim::SimDuration;

use crate::cpu::{Cpu, World};
use crate::gic::Gic;
use crate::ids::{CoreId, Domain, SecretId};
use crate::memory::GranuleMap;
use crate::microarch::{MicroArch, TaintLabel};
use crate::params::{HwParams, ParamError};
use crate::timer::GenericTimer;

/// The simulated server platform.
///
/// Passive state only: methods mutate state and return implied time costs;
/// the system event loop in `cg-core` schedules the corresponding events.
///
/// # Example
///
/// ```
/// use cg_machine::{CoreId, Domain, HwParams, Machine};
/// use cg_sim::SimDuration;
///
/// let mut m = Machine::new(HwParams::small()).unwrap();
/// let wall = m.run_compute(CoreId(0), Domain::Host, SimDuration::micros(10));
/// assert!(wall >= SimDuration::micros(10));
/// ```
#[derive(Debug)]
pub struct Machine {
    params: HwParams,
    cpus: Vec<Cpu>,
    microarch: Vec<MicroArch>,
    timers: Vec<GenericTimer>,
    gic: Gic,
    memory: GranuleMap,
    /// Footprints in the *shared* last-level cache — the one structure
    /// core gapping does not protect (out of scope per the threat model,
    /// §2.4; the paper recommends hardware cache partitioning).
    llc_taint: BTreeSet<TaintLabel>,
    /// Span profiler sink (disabled by default); world switches record
    /// their cost as complete spans.
    profiler: cg_sim::Profiler,
}

impl Machine {
    /// Default physical memory size: 256 GiB, matching a large cloud host.
    pub const DEFAULT_MEMORY_BYTES: u64 = 256 << 30;

    /// Builds a machine from hardware parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`ParamError`] if `params` fails
    /// [`HwParams::validate`]; nothing is constructed in that case.
    pub fn new(params: HwParams) -> Result<Machine, ParamError> {
        params.validate()?;
        let n = params.num_cores;
        Ok(Machine {
            cpus: (0..n).map(|i| Cpu::new(CoreId(i))).collect(),
            microarch: (0..n).map(|_| MicroArch::new()).collect(),
            timers: (0..n).map(|_| GenericTimer::new()).collect(),
            gic: Gic::new(n, params.num_list_regs),
            memory: GranuleMap::new(Machine::DEFAULT_MEMORY_BYTES),
            llc_taint: BTreeSet::new(),
            profiler: cg_sim::Profiler::disabled(),
            params,
        })
    }

    /// Attaches a structured trace to the machine's interrupt controller
    /// and every per-core timer.
    pub fn set_trace(&mut self, trace: &cg_sim::TraceHandle) {
        self.gic.set_trace(trace.clone());
        for (i, timer) in self.timers.iter_mut().enumerate() {
            timer.set_trace(trace.clone(), i as u16);
        }
    }

    /// Attaches a span profiler; world switches record spans through it
    /// from then on.
    pub fn set_profiler(&mut self, profiler: cg_sim::Profiler) {
        self.profiler = profiler;
    }

    /// The hardware parameters this machine was built with.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Number of physical cores.
    pub fn num_cores(&self) -> u16 {
        self.cpus.len() as u16
    }

    /// Iterates over all core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores()).map(CoreId)
    }

    /// Immutable access to a core.
    pub fn cpu(&self, core: CoreId) -> &Cpu {
        &self.cpus[core.index()]
    }

    /// Mutable access to a core.
    pub fn cpu_mut(&mut self, core: CoreId) -> &mut Cpu {
        &mut self.cpus[core.index()]
    }

    /// Immutable access to a core's microarchitectural state.
    pub fn microarch(&self, core: CoreId) -> &MicroArch {
        &self.microarch[core.index()]
    }

    /// Mutable access to a core's microarchitectural state.
    pub fn microarch_mut(&mut self, core: CoreId) -> &mut MicroArch {
        &mut self.microarch[core.index()]
    }

    /// Immutable access to a core's generic timer.
    pub fn timer(&self, core: CoreId) -> &GenericTimer {
        &self.timers[core.index()]
    }

    /// Mutable access to a core's generic timer.
    pub fn timer_mut(&mut self, core: CoreId) -> &mut GenericTimer {
        &mut self.timers[core.index()]
    }

    /// Immutable access to the interrupt controller.
    pub fn gic(&self) -> &Gic {
        &self.gic
    }

    /// Mutable access to the interrupt controller.
    pub fn gic_mut(&mut self) -> &mut Gic {
        &mut self.gic
    }

    /// Immutable access to the granule protection table.
    pub fn memory(&self) -> &GranuleMap {
        &self.memory
    }

    /// Mutable access to the granule protection table.
    pub fn memory_mut(&mut self) -> &mut GranuleMap {
        &mut self.memory
    }

    /// Executes `work` of ideal compute for `domain` on `core`, updating
    /// warmth/taint and returning the wall-clock time consumed.
    pub fn run_compute(&mut self, core: CoreId, domain: Domain, work: SimDuration) -> SimDuration {
        self.cpus[core.index()].set_current_domain(Some(domain));
        self.llc_taint.insert(TaintLabel::plain(domain));
        self.microarch[core.index()].run_compute(domain, work, &self.params)
    }

    /// Fixed-cost work for `domain` on `core`: charges exactly `wall`
    /// (no warmth scaling) while still updating warmth and taint. Used
    /// for calibrated host and monitor code paths.
    pub fn run_fixed(&mut self, core: CoreId, domain: Domain, wall: SimDuration) {
        self.cpus[core.index()].set_current_domain(Some(domain));
        self.llc_taint.insert(TaintLabel::plain(domain));
        self.microarch[core.index()].run_fixed(domain, wall, &self.params);
    }

    /// Secret-dependent variant of [`Machine::run_compute`].
    pub fn run_secret_compute(
        &mut self,
        core: CoreId,
        domain: Domain,
        secret: SecretId,
        work: SimDuration,
    ) -> SimDuration {
        self.cpus[core.index()].set_current_domain(Some(domain));
        self.llc_taint.insert(TaintLabel::plain(domain));
        self.llc_taint.insert(TaintLabel::secret(domain, secret));
        self.microarch[core.index()].run_secret_compute(domain, secret, work, &self.params)
    }

    /// Performs a world switch on `core`, applying the mitigation flush
    /// when the switch crosses a trust boundary, and returns its time cost.
    ///
    /// Transitions between normal world and realm world are trust-boundary
    /// crossings; entering/leaving root world from either side is charged
    /// the base SMC cost (EL3 applies its own mitigations, folded into the
    /// flush cost when the overall transition crosses the boundary).
    pub fn world_switch(&mut self, core: CoreId, to: World) -> SimDuration {
        let from = self.cpus[core.index()].world();
        if from == to {
            return SimDuration::ZERO;
        }
        self.cpus[core.index()].set_world(to);
        let crosses_trust_boundary = matches!(
            (from, to),
            (World::Normal, World::Realm)
                | (World::Realm, World::Normal)
                | (World::Root, World::Normal)
                | (World::Root, World::Realm)
                | (World::Normal, World::Root)
                | (World::Realm, World::Root)
        );
        // A hop through EL3 costs half the SMC round trip; boundary hops
        // out of root world carry the mitigation flush applied on behalf
        // of the destination world.
        let base = self.params.smc_round_trip / 2;
        let cost = if crosses_trust_boundary && matches!(to, World::Normal | World::Realm) {
            self.microarch[core.index()].mitigation_flush();
            base + self.params.mitigation_flush
        } else {
            base
        };
        self.profiler.record_dur(
            cg_sim::SpanKind::WorldSwitch,
            Some(core.0),
            None,
            None,
            cost,
        );
        cost
    }

    /// Number of distinct taint labels resident in the shared LLC (a
    /// cheap gauge for the telemetry sampler).
    pub fn llc_taint_count(&self) -> usize {
        self.llc_taint.len()
    }

    /// Probes the shared last-level cache from any core: returns the
    /// foreign footprints `observer` can learn. This channel crosses
    /// cores — core gapping does not close it (threat-model boundary).
    pub fn probe_llc(&self, observer: Domain) -> Vec<TaintLabel> {
        self.llc_taint
            .iter()
            .filter(|l| l.domain.leaks_to(observer))
            .copied()
            .collect()
    }

    /// Convenience: the full cost of a same-core null call into the RMM
    /// and back (normal → root → realm → root → normal), as the paper's
    /// table 2 lower-bounds with the EL3 null call.
    pub fn same_core_rmm_call_cost(&mut self, core: CoreId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        total += self.world_switch(core, World::Root);
        total += self.world_switch(core, World::Realm);
        total += self.world_switch(core, World::Root);
        total += self.world_switch(core, World::Normal);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RealmId;
    use crate::microarch::Structure;

    fn machine() -> Machine {
        Machine::new(HwParams::small()).unwrap()
    }

    #[test]
    fn construction_sizes_everything() {
        let m = machine();
        assert_eq!(m.num_cores(), 8);
        assert_eq!(m.core_ids().count(), 8);
        assert_eq!(m.gic().num_list_regs(), m.params().num_list_regs);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = HwParams::small();
        p.num_cores = 0;
        assert_eq!(Machine::new(p).unwrap_err(), ParamError::ZeroCores);
    }

    #[test]
    fn compute_charges_slowdown_and_warms() {
        let mut m = machine();
        let c = CoreId(0);
        let d = Domain::Realm(RealmId(0));
        let w1 = m.run_compute(c, d, SimDuration::micros(100));
        let w2 = m.run_compute(c, d, SimDuration::micros(100));
        assert!(w2 < w1);
        assert_eq!(m.cpu(c).current_domain(), Some(d));
    }

    #[test]
    fn world_switch_costs_and_flushes() {
        let mut m = machine();
        let c = CoreId(0);
        // Warm up the branch predictor as the host.
        for _ in 0..50 {
            m.run_compute(c, Domain::Host, SimDuration::micros(100));
        }
        assert!(m.microarch(c).bp_residency(Domain::Host) > 0.9);
        let into_root = m.world_switch(c, World::Root);
        assert!(into_root > SimDuration::ZERO);
        // Entering realm world from root applies the mitigation flush.
        let into_realm = m.world_switch(c, World::Realm);
        assert!(into_realm > into_root);
        assert_eq!(m.microarch(c).bp_residency(Domain::Host), 0.0);
    }

    #[test]
    fn same_world_switch_is_free() {
        let mut m = machine();
        assert_eq!(m.world_switch(CoreId(0), World::Normal), SimDuration::ZERO);
    }

    #[test]
    fn same_core_rmm_call_exceeds_el3_null_call() {
        let mut m = machine();
        let cost = m.same_core_rmm_call_cost(CoreId(1));
        // Table 2: the same-core path is lower-bounded by the EL3 null
        // call at > 12.8 µs.
        assert!(cost >= SimDuration::nanos(12_800), "cost was {cost}");
        assert_eq!(m.cpu(CoreId(1)).world(), World::Normal);
    }

    #[test]
    fn secret_compute_taints_core() {
        let mut m = machine();
        let c = CoreId(2);
        let d = Domain::Realm(RealmId(1));
        m.run_secret_compute(c, d, SecretId(5), SimDuration::micros(1));
        let seen = m.microarch(c).probe(Structure::L1d, Domain::Host);
        assert!(seen.iter().any(|l| l.secret == Some(SecretId(5))));
        // Other cores are untouched.
        assert!(m
            .microarch(CoreId(3))
            .probe(Structure::L1d, Domain::Host)
            .is_empty());
    }

    #[test]
    fn memory_is_shared_machine_state() {
        let mut m = machine();
        let g = crate::memory::GranuleAddr::new(0x100000).unwrap();
        m.memory_mut().delegate(g).unwrap();
        assert!(m.memory().check_access(Domain::Host, g).is_err());
    }
}
