//! Per-core generic timers.
//!
//! Each core has a virtual timer that raises PPI 27 ([`crate::IntId::VTIMER`])
//! when its compare value is reached. The guest programs the timer through
//! system registers that trap to the RMM; in the paper's prototype this is
//! one of the register accesses emulated *locally* by the RMM when timer
//! delegation is enabled (§4.4).
//!
//! The timer is a passive state machine: [`GenericTimer::program`] records
//! the deadline and the caller (the system event loop) schedules the firing
//! event; [`GenericTimer::fire`] validates that a firing event is still
//! current (reprogramming invalidates older deadlines by generation
//! counting).

use cg_sim::{SimTime, TraceHandle, TraceKind};

/// One core's generic timer.
///
/// # Example
///
/// ```
/// use cg_machine::GenericTimer;
/// use cg_sim::SimTime;
///
/// let mut t = GenericTimer::new();
/// let gen1 = t.program(SimTime::from_nanos(1000));
/// let gen2 = t.program(SimTime::from_nanos(2000)); // reprogram
/// assert!(!t.fire(gen1)); // stale deadline: ignored
/// assert!(t.fire(gen2)); // current deadline: raises the interrupt
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenericTimer {
    deadline: Option<SimTime>,
    generation: u64,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
    /// Owning core, for trace attribution.
    core: u16,
}

impl GenericTimer {
    /// Creates a disarmed timer.
    pub fn new() -> GenericTimer {
        GenericTimer::default()
    }

    /// Attaches a structured trace, attributing records to `core`.
    pub fn set_trace(&mut self, trace: TraceHandle, core: u16) {
        self.trace = trace;
        self.core = core;
    }

    /// Arms the timer for `deadline`, returning a generation token the
    /// caller must present when the deadline elapses. Any previously
    /// outstanding deadline is superseded.
    pub fn program(&mut self, deadline: SimTime) -> u64 {
        self.generation += 1;
        self.deadline = Some(deadline);
        self.trace.record(TraceKind::Timer, Some(self.core), || {
            format!("timer.program deadline={deadline} gen={}", self.generation)
        });
        self.generation
    }

    /// Disarms the timer.
    pub fn cancel(&mut self) {
        self.generation += 1;
        let was_armed = self.deadline.is_some();
        self.deadline = None;
        self.trace.record(TraceKind::Timer, Some(self.core), || {
            format!(
                "timer.cancel{}",
                if was_armed { "" } else { " (already disarmed)" }
            )
        });
    }

    /// Reports a firing event for generation `generation`.
    ///
    /// Returns `true` if this firing is current (the caller should then
    /// raise [`crate::IntId::VTIMER`] on the owning core); `false` if the
    /// timer was reprogrammed or cancelled in the meantime.
    pub fn fire(&mut self, generation: u64) -> bool {
        let current = generation == self.generation && self.deadline.is_some();
        if current {
            self.deadline = None;
        }
        self.trace.record(TraceKind::Timer, Some(self.core), || {
            format!(
                "timer.fire gen={generation} {}",
                if current { "current" } else { "stale" }
            )
        });
        current
    }

    /// The currently armed deadline, if any.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// Returns `true` if the timer is armed.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_and_fire() {
        let mut t = GenericTimer::new();
        assert!(!t.is_armed());
        let g = t.program(SimTime::from_nanos(500));
        assert!(t.is_armed());
        assert_eq!(t.deadline(), Some(SimTime::from_nanos(500)));
        assert!(t.fire(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn reprogram_invalidates_old_generation() {
        let mut t = GenericTimer::new();
        let g1 = t.program(SimTime::from_nanos(500));
        let g2 = t.program(SimTime::from_nanos(900));
        assert!(!t.fire(g1));
        assert!(t.is_armed());
        assert!(t.fire(g2));
    }

    #[test]
    fn cancel_invalidates() {
        let mut t = GenericTimer::new();
        let g = t.program(SimTime::from_nanos(500));
        t.cancel();
        assert!(!t.fire(g));
        assert!(!t.is_armed());
    }

    #[test]
    fn fire_twice_is_rejected() {
        let mut t = GenericTimer::new();
        let g = t.program(SimTime::from_nanos(500));
        assert!(t.fire(g));
        assert!(!t.fire(g));
    }
}
