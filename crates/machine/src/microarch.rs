//! Per-core microarchitectural state: warmth (performance) and taint
//! (security).
//!
//! The same structures drive both halves of the reproduction:
//!
//! * **Warmth** models how much of a domain's working set is resident in
//!   per-core structures. It produces the locality effects behind the
//!   paper's performance results: a shared-core VM that exits to the host
//!   loses L1/TLB/branch-predictor residency, while a core-gapped vCPU
//!   keeps its structures warm (paper §2.3, §5.2).
//!
//! * **Taint** records which domains (and which secrets) have left
//!   observable footprints in each structure. The `cg-attacks` crate uses
//!   this to check the paper's central security claim: with core gapping,
//!   no same-core structure ever carries another domain's footprint when a
//!   distrusting domain runs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use cg_sim::SimDuration;

use crate::ids::{Domain, SecretId};
use crate::params::HwParams;

/// A microarchitectural structure that can carry footprints.
///
/// The split mirrors the paper's threat model (§2.4): everything except
/// [`Structure::Llc`] is per-core and therefore protected by core gapping;
/// the LLC is shared across cores and explicitly out of scope (the paper
/// recommends hardware cache partitioning for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Structure {
    /// Level-1 data cache (per core).
    L1d,
    /// Level-1 instruction cache (per core).
    L1i,
    /// Translation lookaside buffers (per core).
    Tlb,
    /// Branch predictor state: BTB, BHB, RSB (per core).
    BranchPredictor,
    /// Store/fill/staging buffers exploited by MDS-class attacks (per
    /// core).
    FillBuffer,
    /// Last-level cache (shared across cores; out of scope for core
    /// gapping).
    Llc,
}

impl Structure {
    /// All structures, per-core first.
    pub const ALL: [Structure; 6] = [
        Structure::L1d,
        Structure::L1i,
        Structure::Tlb,
        Structure::BranchPredictor,
        Structure::FillBuffer,
        Structure::Llc,
    ];

    /// The per-core structures protected by core gapping.
    pub const PER_CORE: [Structure; 5] = [
        Structure::L1d,
        Structure::L1i,
        Structure::Tlb,
        Structure::BranchPredictor,
        Structure::FillBuffer,
    ];

    /// Returns `true` if the structure is private to a core.
    pub fn is_per_core(self) -> bool {
        !matches!(self, Structure::Llc)
    }

    /// Returns `true` if the trust-boundary mitigation flush (as applied
    /// by firmware on world switches, cf. TDX's branch-history flush)
    /// clears this structure.
    ///
    /// Caches and TLBs are *not* cleared by such mitigations — flushing
    /// them wholesale is too expensive, which is exactly why cache-timing
    /// channels persist on shared cores.
    pub fn cleared_by_mitigation(self) -> bool {
        matches!(self, Structure::BranchPredictor | Structure::FillBuffer)
    }
}

/// A footprint label: which domain left state behind, and whether the
/// footprint depends on a secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaintLabel {
    /// The domain that created the footprint.
    pub domain: Domain,
    /// The secret the footprint depends on, if any. A `None` footprint
    /// still reveals *execution* of the domain (fingerprinting); a
    /// `Some` footprint reveals secret-dependent state — the payload of a
    /// transient-execution attack.
    pub secret: Option<SecretId>,
}

impl TaintLabel {
    /// A footprint that does not depend on any secret.
    pub fn plain(domain: Domain) -> TaintLabel {
        TaintLabel {
            domain,
            secret: None,
        }
    }

    /// A secret-dependent footprint.
    pub fn secret(domain: Domain, secret: SecretId) -> TaintLabel {
        TaintLabel {
            domain,
            secret: Some(secret),
        }
    }
}

/// Residency of one domain's working set in the per-core structures.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Warmth {
    l1: f64,
    tlb: f64,
    bp: f64,
}

impl Warmth {
    const COLD: Warmth = Warmth {
        l1: 0.0,
        tlb: 0.0,
        bp: 0.0,
    };

    fn decay(&mut self, factor: f64) {
        self.l1 *= factor;
        self.tlb *= factor;
        self.bp *= factor;
    }

    fn warm(&mut self, factor: f64) {
        // Exponential approach to fully resident.
        self.l1 += (1.0 - self.l1) * factor;
        self.tlb += (1.0 - self.tlb) * factor;
        self.bp += (1.0 - self.bp) * factor;
    }
}

/// The microarchitectural state of one core.
///
/// # Example
///
/// ```
/// use cg_machine::{Domain, HwParams, MicroArch};
/// use cg_sim::SimDuration;
///
/// let params = HwParams::small();
/// let mut ua = MicroArch::new();
/// // A cold domain runs slower than ideal...
/// let wall = ua.run_compute(Domain::Host, SimDuration::micros(100), &params);
/// assert!(wall > SimDuration::micros(100));
/// // ...and warms up as it computes.
/// let wall2 = ua.run_compute(Domain::Host, SimDuration::micros(100), &params);
/// assert!(wall2 < wall);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MicroArch {
    warmth: BTreeMap<Domain, Warmth>,
    taint: BTreeMap<Structure, BTreeSet<TaintLabel>>,
}

impl MicroArch {
    /// Creates cold, untainted state.
    pub fn new() -> MicroArch {
        MicroArch::default()
    }

    /// The slowdown factor (≥ 1.0) `domain` currently experiences on this
    /// core, given its structure residency.
    pub fn slowdown(&self, domain: Domain, params: &HwParams) -> f64 {
        let w = self.warmth.get(&domain).copied().unwrap_or(Warmth::COLD);
        1.0 + params.l1_penalty * (1.0 - w.l1)
            + params.tlb_penalty * (1.0 - w.tlb) * (1.0 + params.gpc_check_factor)
            + params.bp_penalty * (1.0 - w.bp)
    }

    /// Executes `work` (ideal, fully-warm compute time) for `domain`,
    /// returning the wall-clock time consumed.
    ///
    /// Warms `domain`'s residency, evicts other domains' residency, and
    /// leaves plain footprints in every per-core structure and the LLC.
    pub fn run_compute(
        &mut self,
        domain: Domain,
        work: SimDuration,
        params: &HwParams,
    ) -> SimDuration {
        let slowdown = self.slowdown(domain, params);
        let wall = work.scaled(slowdown);
        self.advance_warmth(domain, wall, params);
        let label = TaintLabel::plain(domain);
        for s in Structure::ALL {
            self.touch(s, label);
        }
        wall
    }

    /// Executes `wall` of *fixed-cost* work for `domain`: the time is
    /// charged at face value (used for calibrated host/monitor code paths
    /// whose measured costs already include their memory behaviour), but
    /// warmth and taint bookkeeping still applies — foreign working sets
    /// are evicted and footprints are left behind.
    pub fn run_fixed(&mut self, domain: Domain, wall: SimDuration, params: &HwParams) {
        self.advance_warmth(domain, wall, params);
        let label = TaintLabel::plain(domain);
        for s in Structure::ALL {
            self.touch(s, label);
        }
    }

    /// Like [`MicroArch::run_compute`], but the computation is
    /// secret-dependent: footprints carry the secret label. This is how
    /// attack scenarios model a victim operating on sensitive data.
    pub fn run_secret_compute(
        &mut self,
        domain: Domain,
        secret: SecretId,
        work: SimDuration,
        params: &HwParams,
    ) -> SimDuration {
        let wall = self.run_compute(domain, work, params);
        let label = TaintLabel::secret(domain, secret);
        for s in Structure::ALL {
            self.touch(s, label);
        }
        wall
    }

    fn advance_warmth(&mut self, domain: Domain, wall: SimDuration, params: &HwParams) {
        let warm_f = 1.0 - (-(wall.as_nanos() as f64) / params.warmup_tau.as_nanos() as f64).exp();
        let evict_f = (-(wall.as_nanos() as f64) / params.evict_tau.as_nanos() as f64).exp();
        for (d, w) in self.warmth.iter_mut() {
            if *d != domain {
                w.decay(evict_f);
            }
        }
        self.warmth
            .entry(domain)
            .or_insert(Warmth::COLD)
            .warm(warm_f);
    }

    /// Applies the effects of a trust-boundary crossing *with* the
    /// firmware mitigation flush: branch predictor and fill buffers are
    /// cleared (warmth and taint), for **all** domains — the flush is
    /// indiscriminate, which is why it costs performance.
    pub fn mitigation_flush(&mut self) {
        for w in self.warmth.values_mut() {
            w.bp = 0.0;
        }
        for s in Structure::ALL {
            if s.cleared_by_mitigation() {
                self.taint.remove(&s);
            }
        }
    }

    /// Records a footprint in `structure`.
    pub fn touch(&mut self, structure: Structure, label: TaintLabel) {
        self.taint.entry(structure).or_default().insert(label);
    }

    /// Returns the foreign footprints `observer` could learn by probing
    /// `structure` on this core (e.g. via prime+probe timing): every label
    /// whose originating domain leaks to `observer`.
    ///
    /// Probing is a pure observation: it does not alter state. The caller
    /// decides whether the observer can architecturally reach the
    /// structure (same core for per-core structures).
    pub fn probe(&self, structure: Structure, observer: Domain) -> Vec<TaintLabel> {
        self.taint
            .get(&structure)
            .map(|set| {
                set.iter()
                    .filter(|l| l.domain.leaks_to(observer))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All labels currently present in `structure`.
    pub fn footprints(&self, structure: Structure) -> Vec<TaintLabel> {
        self.taint
            .get(&structure)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Current residency of `domain` in the L1, in `[0, 1]`.
    pub fn l1_residency(&self, domain: Domain) -> f64 {
        self.warmth.get(&domain).map(|w| w.l1).unwrap_or(0.0)
    }

    /// Current residency of `domain` in the branch predictor, in `[0, 1]`.
    pub fn bp_residency(&self, domain: Domain) -> f64 {
        self.warmth.get(&domain).map(|w| w.bp).unwrap_or(0.0)
    }

    /// Clears all warmth and taint (power-on reset).
    pub fn reset(&mut self) {
        self.warmth.clear();
        self.taint.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RealmId;

    fn params() -> HwParams {
        HwParams::small()
    }

    const HOST: Domain = Domain::Host;
    const R1: Domain = Domain::Realm(RealmId(1));

    #[test]
    fn cold_start_is_max_slowdown() {
        let ua = MicroArch::new();
        let p = params();
        let s = ua.slowdown(HOST, &p);
        assert!((s - p.max_slowdown()).abs() < 1e-9);
    }

    #[test]
    fn compute_warms_up_and_speeds_up() {
        let mut ua = MicroArch::new();
        let p = params();
        let work = SimDuration::micros(200);
        let first = ua.run_compute(R1, work, &p);
        let second = ua.run_compute(R1, work, &p);
        let third = ua.run_compute(R1, work, &p);
        assert!(second < first);
        assert!(third <= second);
        // After plenty of compute, slowdown approaches 1.
        for _ in 0..50 {
            ua.run_compute(R1, work, &p);
        }
        assert!(ua.slowdown(R1, &p) < 1.02);
    }

    #[test]
    fn foreign_compute_evicts_residency() {
        let mut ua = MicroArch::new();
        let p = params();
        for _ in 0..50 {
            ua.run_compute(R1, SimDuration::micros(100), &p);
        }
        let warm = ua.l1_residency(R1);
        ua.run_compute(HOST, SimDuration::micros(300), &p);
        let after = ua.l1_residency(R1);
        assert!(after < warm, "host compute should evict realm working set");
    }

    #[test]
    fn mitigation_flush_clears_bp_but_not_l1() {
        let mut ua = MicroArch::new();
        let p = params();
        for _ in 0..50 {
            ua.run_compute(R1, SimDuration::micros(100), &p);
        }
        assert!(ua.bp_residency(R1) > 0.9);
        let l1_before = ua.l1_residency(R1);
        ua.mitigation_flush();
        assert_eq!(ua.bp_residency(R1), 0.0);
        assert_eq!(ua.l1_residency(R1), l1_before);
    }

    #[test]
    fn compute_taints_all_structures() {
        let mut ua = MicroArch::new();
        let p = params();
        ua.run_compute(R1, SimDuration::micros(10), &p);
        for s in Structure::ALL {
            assert!(
                ua.footprints(s).contains(&TaintLabel::plain(R1)),
                "{s:?} should carry realm footprint"
            );
        }
    }

    #[test]
    fn probe_reveals_only_leaking_labels() {
        let mut ua = MicroArch::new();
        ua.touch(Structure::L1d, TaintLabel::plain(Domain::Monitor));
        ua.touch(Structure::L1d, TaintLabel::plain(R1));
        let seen = ua.probe(Structure::L1d, HOST);
        assert_eq!(seen, vec![TaintLabel::plain(R1)]);
        // The realm probing sees the host? There is no host label, and the
        // monitor label is trusted, so nothing leaks.
        let seen = ua.probe(Structure::Tlb, R1);
        assert!(seen.is_empty());
    }

    #[test]
    fn secret_compute_leaves_secret_footprint() {
        let mut ua = MicroArch::new();
        let p = params();
        let secret = SecretId(99);
        ua.run_secret_compute(R1, secret, SimDuration::micros(5), &p);
        let seen = ua.probe(Structure::FillBuffer, HOST);
        assert!(seen.contains(&TaintLabel::secret(R1, secret)));
    }

    #[test]
    fn mitigation_flush_clears_bp_and_fill_buffer_taint() {
        let mut ua = MicroArch::new();
        let p = params();
        ua.run_secret_compute(R1, SecretId(1), SimDuration::micros(5), &p);
        ua.mitigation_flush();
        assert!(ua.footprints(Structure::BranchPredictor).is_empty());
        assert!(ua.footprints(Structure::FillBuffer).is_empty());
        // Cache/TLB taint survives: mitigations do not flush caches.
        assert!(!ua.footprints(Structure::L1d).is_empty());
        assert!(!ua.footprints(Structure::Tlb).is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut ua = MicroArch::new();
        let p = params();
        ua.run_compute(R1, SimDuration::micros(5), &p);
        ua.reset();
        assert_eq!(ua.l1_residency(R1), 0.0);
        assert!(ua.footprints(Structure::L1d).is_empty());
    }

    #[test]
    fn gpc_factor_increases_tlb_cost() {
        let mut p = params();
        let ua = MicroArch::new();
        let base = ua.slowdown(R1, &p);
        p.gpc_check_factor = 0.5;
        let with_gpc = ua.slowdown(R1, &p);
        assert!(with_gpc > base);
    }
}
