//! Hardware timing and sizing parameters.
//!
//! Every latency the simulator charges is a named field here, so each
//! experiment's outcome can be traced to explicit assumptions. Defaults are
//! calibrated so the microbenchmarks reproduce the paper's table 2/3
//! measurements on the AmpereOne evaluation platform (§5.1); see
//! `EXPERIMENTS.md` for the calibration results.

use std::fmt;

use cg_sim::SimDuration;

/// A rejected hardware-parameter set: which constraint a [`HwParams`]
/// value violated.
///
/// Returned by [`HwParams::validate`] and [`crate::Machine::new`] so
/// embedders can handle bad configurations without a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `num_cores` was zero.
    ZeroCores,
    /// `freq_ghz` was zero or negative.
    NonPositiveFreq,
    /// `num_list_regs` was zero.
    ZeroListRegs,
    /// One of the warmth penalty factors was negative.
    NegativePenalty,
    /// `gpc_check_factor` was negative.
    NegativeGpcFactor,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::ZeroCores => write!(f, "num_cores must be at least 1"),
            ParamError::NonPositiveFreq => write!(f, "freq_ghz must be positive"),
            ParamError::ZeroListRegs => write!(f, "num_list_regs must be at least 1"),
            ParamError::NegativePenalty => {
                write!(f, "microarch penalty factors must be non-negative")
            }
            ParamError::NegativeGpcFactor => write!(f, "gpc_check_factor must be non-negative"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Timing and sizing parameters of the simulated machine.
///
/// Construct with [`HwParams::ampere_one_like`] (the calibrated default)
/// and adjust fields for sensitivity studies.
///
/// # Example
///
/// ```
/// use cg_machine::HwParams;
///
/// let mut p = HwParams::ampere_one_like();
/// p.num_cores = 64;
/// assert!(p.mitigation_flush > p.smc_round_trip);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HwParams {
    /// Number of physical cores. AmpereOne SKUs ship up to 192; the paper
    /// uses up to 64 cores in fig. 6.
    pub num_cores: u16,
    /// Core clock in GHz (paper: 3 GHz).
    pub freq_ghz: f64,
    /// Number of virtual-interrupt list registers (`ich_lr<n>_el2`) per
    /// core. GIC implementations provide up to 16.
    pub num_list_regs: usize,

    // ----- cache coherence / cross-core communication -----
    /// Latency for a cache line dirtied on one core to be read on another
    /// (the unit cost of shared-memory RPC).
    pub cache_line_transfer: SimDuration,
    /// One iteration of a busy-wait polling loop (load + compare + branch
    /// on a monitored line).
    pub poll_iteration: SimDuration,
    /// Writing a small RPC descriptor to shared memory (a few stores plus
    /// a release barrier).
    pub mailbox_write: SimDuration,

    // ----- interrupts -----
    /// Hardware SGI (IPI) delivery latency: write to `ICC_SGI1R_EL1` until
    /// the target core takes the interrupt.
    pub ipi_deliver: SimDuration,
    /// Interrupt entry on the receiving core: vector, acknowledge (IAR
    /// read), minimal handler prologue.
    pub irq_entry: SimDuration,
    /// Latency from a device raising an SPI to the target core taking it.
    pub device_irq_deliver: SimDuration,

    // ----- world switches and traps -----
    /// Base cost of a null SMC to EL3 and back, *excluding* vulnerability
    /// mitigations (context bank switch, ERET paths).
    pub smc_round_trip: SimDuration,
    /// Cost of the transient-execution mitigations applied on each
    /// trust-boundary crossing (branch-predictor invalidation, speculation
    /// barriers, buffer clears). Table 2's same-core null EL3 call
    /// (> 12.8 µs) is dominated by two of these.
    pub mitigation_flush: SimDuration,
    /// Trap from a running realm vCPU into the RMM (exception entry at
    /// R-EL2, cause decode).
    pub realm_exit_trap: SimDuration,
    /// Re-entering a realm vCPU from the RMM (ERET path).
    pub realm_enter: SimDuration,
    /// Saving a full vCPU register context (GPRs, SIMD, system registers).
    pub context_save: SimDuration,
    /// Restoring a full vCPU register context.
    pub context_restore: SimDuration,
    /// A trapped guest system-register access handled entirely inside the
    /// RMM (e.g. a delegated timer or ICC register write): trap, decode,
    /// emulate, return. Excludes any onward signalling.
    pub sysreg_trap_emulate: SimDuration,

    // ----- host kernel primitives -----
    /// Waking a blocked thread and making it runnable (scheduler fast
    /// path, as exercised by the wake-up thread in fig. 4).
    pub sched_wakeup: SimDuration,
    /// Switching the running thread on a host core.
    pub context_switch: SimDuration,

    // ----- timers -----
    /// Reprogramming a generic timer compare value.
    pub timer_program: SimDuration,

    // ----- microarchitectural warmth model -----
    /// Compute time for a domain's L1/TLB residency to recover ~63 % of
    /// the way to fully warm (exponential time constant).
    pub warmup_tau: SimDuration,
    /// Compute time by *another* domain on the same core for a resident
    /// domain's residency to decay by ~63 % (capacity eviction constant).
    pub evict_tau: SimDuration,
    /// Maximum slowdown contribution of a cold L1 (e.g. 0.35 = up to 35 %
    /// extra cycles per unit of work when the L1 holds none of the
    /// working set).
    pub l1_penalty: f64,
    /// Maximum slowdown contribution of a cold TLB.
    pub tlb_penalty: f64,
    /// Maximum slowdown contribution of a cold branch predictor.
    pub bp_penalty: f64,
    /// Extra per-access cost factor for CCA granule-protection checks on
    /// TLB misses (kept at zero to match the paper's non-RME evaluation
    /// hardware; exposed for sensitivity studies).
    pub gpc_check_factor: f64,
}

impl HwParams {
    /// Parameters calibrated against the paper's evaluation platform: an
    /// AmpereOne-class Armv8.6 server at 3 GHz with 64 usable cores.
    pub fn ampere_one_like() -> HwParams {
        HwParams {
            num_cores: 64,
            freq_ghz: 3.0,
            num_list_regs: 16,

            cache_line_transfer: SimDuration::nanos(85),
            poll_iteration: SimDuration::nanos(36),
            mailbox_write: SimDuration::nanos(25),

            ipi_deliver: SimDuration::nanos(900),
            irq_entry: SimDuration::nanos(320),
            device_irq_deliver: SimDuration::micros(2),

            smc_round_trip: SimDuration::nanos(1_400),
            mitigation_flush: SimDuration::nanos(5_700),
            realm_exit_trap: SimDuration::nanos(420),
            realm_enter: SimDuration::nanos(420),
            context_save: SimDuration::nanos(480),
            context_restore: SimDuration::nanos(480),
            sysreg_trap_emulate: SimDuration::nanos(260),

            sched_wakeup: SimDuration::nanos(500),
            context_switch: SimDuration::nanos(600),

            timer_program: SimDuration::nanos(60),

            warmup_tau: SimDuration::micros(40),
            evict_tau: SimDuration::micros(60),
            l1_penalty: 0.32,
            tlb_penalty: 0.14,
            bp_penalty: 0.18,
            gpc_check_factor: 0.0,
        }
    }

    /// A small, fast configuration for unit tests: 8 cores and the same
    /// calibrated latencies.
    pub fn small() -> HwParams {
        HwParams {
            num_cores: 8,
            ..HwParams::ampere_one_like()
        }
    }

    /// The cost of a same-core null EL3 call including mitigations applied
    /// in both directions (table 2, "same-core synchronous" row).
    pub fn el3_null_call(&self) -> SimDuration {
        self.smc_round_trip + self.mitigation_flush * 2
    }

    /// Maximum combined cold-structure slowdown factor.
    pub fn max_slowdown(&self) -> f64 {
        1.0 + self.l1_penalty + self.tlb_penalty + self.bp_penalty
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (non-positive core count,
    /// zero frequency, no list registers, or negative penalty factors).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.num_cores == 0 {
            return Err(ParamError::ZeroCores);
        }
        if self.freq_ghz <= 0.0 {
            return Err(ParamError::NonPositiveFreq);
        }
        if self.num_list_regs == 0 {
            return Err(ParamError::ZeroListRegs);
        }
        if self.l1_penalty < 0.0 || self.tlb_penalty < 0.0 || self.bp_penalty < 0.0 {
            return Err(ParamError::NegativePenalty);
        }
        if self.gpc_check_factor < 0.0 {
            return Err(ParamError::NegativeGpcFactor);
        }
        Ok(())
    }
}

impl Default for HwParams {
    fn default() -> HwParams {
        HwParams::ampere_one_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HwParams::default().validate().unwrap();
        HwParams::small().validate().unwrap();
    }

    #[test]
    fn el3_null_call_exceeds_12_8_us() {
        // Table 2 reports > 12.8 µs for the same-core null EL3 call.
        let p = HwParams::ampere_one_like();
        assert!(p.el3_null_call() >= SimDuration::nanos(12_800));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut p = HwParams::small();
        p.num_cores = 0;
        assert_eq!(p.validate(), Err(ParamError::ZeroCores));

        let mut p = HwParams::small();
        p.freq_ghz = 0.0;
        assert_eq!(p.validate(), Err(ParamError::NonPositiveFreq));

        let mut p = HwParams::small();
        p.num_list_regs = 0;
        assert_eq!(p.validate(), Err(ParamError::ZeroListRegs));

        let mut p = HwParams::small();
        p.l1_penalty = -0.1;
        assert_eq!(p.validate(), Err(ParamError::NegativePenalty));

        let mut p = HwParams::small();
        p.gpc_check_factor = -0.5;
        assert_eq!(p.validate(), Err(ParamError::NegativeGpcFactor));
    }

    #[test]
    fn param_error_displays_constraint() {
        let msg = ParamError::ZeroCores.to_string();
        assert!(msg.contains("num_cores"), "{msg}");
        let err: Box<dyn std::error::Error> = Box::new(ParamError::NonPositiveFreq);
        assert!(err.to_string().contains("freq_ghz"));
    }

    #[test]
    fn max_slowdown_sums_penalties() {
        let p = HwParams::ampere_one_like();
        let expected = 1.0 + p.l1_penalty + p.tlb_penalty + p.bp_penalty;
        assert!((p.max_slowdown() - expected).abs() < 1e-12);
    }
}
