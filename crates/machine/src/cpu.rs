//! Per-core execution state: world, ownership, and online status.

use std::fmt;

use crate::ids::{CoreId, Domain, RealmId};

/// The security world a core is currently executing in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum World {
    /// Normal (non-secure) world: host kernel, VMM, ordinary VMs.
    #[default]
    Normal,
    /// Realm world: the RMM and confidential VMs.
    Realm,
    /// Root world: the EL3 monitor.
    Root,
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            World::Normal => "normal",
            World::Realm => "realm",
            World::Root => "root",
        };
        f.write_str(s)
    }
}

/// Who controls a core's execution.
///
/// Core-gapping's central state transition (paper §4.2): cores move from
/// host ownership, through the hotplug-offline path, to RMM dedication —
/// and never run host code again until the CVM using them terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuOwner {
    /// Online under the host OS scheduler.
    #[default]
    Host,
    /// Taken offline by CPU hotplug; not yet handed to anyone (a vanilla
    /// hotplugged core would be powered down here).
    Offline,
    /// Dedicated to the RMM. Initially unbound; once a vCPU first enters,
    /// it is bound to that vCPU's realm until the realm is destroyed.
    Rmm(Option<RealmId>),
}

/// One physical core.
///
/// # Example
///
/// ```
/// use cg_machine::{Cpu, CpuOwner, CoreId, World};
///
/// let cpu = Cpu::new(CoreId(0));
/// assert_eq!(cpu.owner(), CpuOwner::Host);
/// assert_eq!(cpu.world(), World::Normal);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    id: CoreId,
    world: World,
    owner: CpuOwner,
    /// The domain whose code is currently executing (None when idle in
    /// the architectural sense, e.g. WFI in the host idle loop).
    current_domain: Option<Domain>,
}

impl Cpu {
    /// Creates a host-owned core in normal world.
    pub fn new(id: CoreId) -> Cpu {
        Cpu {
            id,
            world: World::Normal,
            owner: CpuOwner::Host,
            current_domain: None,
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The current world.
    pub fn world(&self) -> World {
        self.world
    }

    /// Switches world (the time cost is charged by the caller).
    pub fn set_world(&mut self, world: World) {
        self.world = world;
    }

    /// Current ownership.
    pub fn owner(&self) -> CpuOwner {
        self.owner
    }

    /// Takes the core offline from the host (hotplug).
    ///
    /// # Panics
    ///
    /// Panics unless the core is host-owned: offlining a dedicated core
    /// would be a host attempt to reclaim a CVM's core, which the monitor
    /// refuses — callers must model that refusal before reaching here.
    pub fn offline(&mut self) {
        assert_eq!(
            self.owner,
            CpuOwner::Host,
            "{} must be host-owned to go offline",
            self.id
        );
        self.owner = CpuOwner::Offline;
    }

    /// Hands an offline core to the RMM (the paper's modified final
    /// hotplug step).
    ///
    /// # Panics
    ///
    /// Panics unless the core is offline.
    pub fn dedicate_to_rmm(&mut self) {
        assert_eq!(
            self.owner,
            CpuOwner::Offline,
            "{} must be offline to dedicate",
            self.id
        );
        self.owner = CpuOwner::Rmm(None);
        self.world = World::Realm;
    }

    /// Binds a dedicated core to a realm (on first vCPU entry).
    ///
    /// # Panics
    ///
    /// Panics unless the core is RMM-dedicated and unbound or already
    /// bound to the same realm.
    pub fn bind_realm(&mut self, realm: RealmId) {
        match self.owner {
            CpuOwner::Rmm(None) => self.owner = CpuOwner::Rmm(Some(realm)),
            CpuOwner::Rmm(Some(r)) if r == realm => {}
            other => panic!("{} cannot bind {realm}: owner is {other:?}", self.id),
        }
    }

    /// Unbinds a dedicated core from its realm (realm destroyed), leaving
    /// it RMM-owned and unbound.
    pub fn unbind_realm(&mut self) {
        if let CpuOwner::Rmm(_) = self.owner {
            self.owner = CpuOwner::Rmm(None);
        }
    }

    /// Returns the core to host ownership (hotplug online).
    ///
    /// # Panics
    ///
    /// Panics if the core is still bound to a realm.
    pub fn online(&mut self) {
        match self.owner {
            CpuOwner::Offline | CpuOwner::Rmm(None) => {
                self.owner = CpuOwner::Host;
                self.world = World::Normal;
            }
            CpuOwner::Rmm(Some(r)) => {
                panic!("{} cannot come online while bound to {r}", self.id)
            }
            CpuOwner::Host => {}
        }
    }

    /// The realm this core is bound to, if any.
    pub fn bound_realm(&self) -> Option<RealmId> {
        match self.owner {
            CpuOwner::Rmm(r) => r,
            _ => None,
        }
    }

    /// Returns `true` if the host scheduler may run threads here.
    pub fn is_host_schedulable(&self) -> bool {
        self.owner == CpuOwner::Host
    }

    /// Records which domain's code is executing.
    pub fn set_current_domain(&mut self, domain: Option<Domain>) {
        self.current_domain = domain;
    }

    /// The domain currently executing, if any.
    pub fn current_domain(&self) -> Option<Domain> {
        self.current_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedication_lifecycle() {
        let mut cpu = Cpu::new(CoreId(1));
        assert!(cpu.is_host_schedulable());
        cpu.offline();
        assert!(!cpu.is_host_schedulable());
        cpu.dedicate_to_rmm();
        assert_eq!(cpu.owner(), CpuOwner::Rmm(None));
        assert_eq!(cpu.world(), World::Realm);
        cpu.bind_realm(RealmId(4));
        assert_eq!(cpu.bound_realm(), Some(RealmId(4)));
        cpu.unbind_realm();
        cpu.online();
        assert!(cpu.is_host_schedulable());
        assert_eq!(cpu.world(), World::Normal);
    }

    #[test]
    fn rebinding_same_realm_is_idempotent() {
        let mut cpu = Cpu::new(CoreId(0));
        cpu.offline();
        cpu.dedicate_to_rmm();
        cpu.bind_realm(RealmId(1));
        cpu.bind_realm(RealmId(1));
        assert_eq!(cpu.bound_realm(), Some(RealmId(1)));
    }

    #[test]
    #[should_panic(expected = "cannot bind")]
    fn binding_two_realms_panics() {
        let mut cpu = Cpu::new(CoreId(0));
        cpu.offline();
        cpu.dedicate_to_rmm();
        cpu.bind_realm(RealmId(1));
        cpu.bind_realm(RealmId(2));
    }

    #[test]
    #[should_panic(expected = "cannot come online")]
    fn online_while_bound_panics() {
        let mut cpu = Cpu::new(CoreId(0));
        cpu.offline();
        cpu.dedicate_to_rmm();
        cpu.bind_realm(RealmId(1));
        cpu.online();
    }

    #[test]
    #[should_panic(expected = "must be host-owned")]
    fn offline_twice_panics() {
        let mut cpu = Cpu::new(CoreId(0));
        cpu.offline();
        cpu.offline();
    }

    #[test]
    fn current_domain_tracking() {
        let mut cpu = Cpu::new(CoreId(0));
        assert_eq!(cpu.current_domain(), None);
        cpu.set_current_domain(Some(Domain::Host));
        assert_eq!(cpu.current_domain(), Some(Domain::Host));
    }
}
