//! Physical memory and the granule protection table (GPT).
//!
//! CCA partitions physical memory into 4 KiB *granules*, each in a state
//! that determines which world may access it. The host *delegates*
//! granules to the realm world through the monitor; the RMM then assigns
//! them to a realm as data, page-table (RTT), or vCPU-context (REC)
//! storage. The hardware granule protection check faults any access that
//! violates the table — this is what makes realm memory inaccessible to
//! the hypervisor.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{Domain, RealmId};

/// Size of one granule in bytes.
pub const GRANULE_SIZE: u64 = 4096;

/// A granule-aligned physical address.
///
/// # Example
///
/// ```
/// use cg_machine::GranuleAddr;
///
/// let g = GranuleAddr::new(0x8000_0000).unwrap();
/// assert_eq!(g.as_u64(), 0x8000_0000);
/// assert!(GranuleAddr::new(0x8000_0001).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GranuleAddr(u64);

impl GranuleAddr {
    /// Creates a granule address; returns `None` if `addr` is not
    /// 4 KiB-aligned.
    pub fn new(addr: u64) -> Option<GranuleAddr> {
        if addr.is_multiple_of(GRANULE_SIZE) {
            Some(GranuleAddr(addr))
        } else {
            None
        }
    }

    /// The granule containing an arbitrary byte address.
    pub fn containing(addr: u64) -> GranuleAddr {
        GranuleAddr(addr & !(GRANULE_SIZE - 1))
    }

    /// Returns the raw physical address.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The `n`-th granule after this one.
    pub fn offset(self, n: u64) -> GranuleAddr {
        GranuleAddr(self.0 + n * GRANULE_SIZE)
    }
}

impl fmt::Display for GranuleAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Ownership/usage state of a physical granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GranuleState {
    /// Non-secure: accessible to the host (and sharable with guests as
    /// unprotected memory, e.g. for virtio rings and RPC channels).
    #[default]
    NonSecure,
    /// Delegated to realm world but not yet assigned; accessible only to
    /// the monitor/RMM.
    Delegated,
    /// Realm data page, mapped into a realm's protected address space.
    RealmData(RealmId),
    /// Realm translation table (stage-2 page table) storage.
    RealmRtt(RealmId),
    /// Realm execution context (vCPU register file) storage.
    RealmRec(RealmId),
    /// Realm descriptor storage.
    RealmRd(RealmId),
    /// Monitor-private (EL3 / root world) memory.
    Root,
}

impl GranuleState {
    /// The realm that owns this granule, if any.
    pub fn owner(self) -> Option<RealmId> {
        match self {
            GranuleState::RealmData(r)
            | GranuleState::RealmRtt(r)
            | GranuleState::RealmRec(r)
            | GranuleState::RealmRd(r) => Some(r),
            _ => None,
        }
    }
}

/// Errors from granule-map operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The granule is not in the state required by the requested
    /// transition (e.g. delegating a granule that is already delegated).
    BadState {
        /// The state the granule was actually in.
        actual: GranuleState,
    },
    /// An access violated the granule protection table.
    GranuleProtectionFault {
        /// The domain that attempted the access.
        domain: Domain,
        /// The state of the granule it touched.
        state: GranuleState,
    },
    /// The address lies outside physical memory.
    OutOfRange,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::BadState { actual } => {
                write!(f, "granule in unexpected state {actual:?}")
            }
            MemoryError::GranuleProtectionFault { domain, state } => {
                write!(
                    f,
                    "granule protection fault: {domain} accessed {state:?} granule"
                )
            }
            MemoryError::OutOfRange => write!(f, "address outside physical memory"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// The machine's granule protection table.
///
/// Tracks the state of every granule (sparsely: untouched granules are
/// [`GranuleState::NonSecure`]) and enforces the CCA access rules.
///
/// # Example
///
/// ```
/// use cg_machine::{Domain, GranuleAddr, GranuleMap, GranuleState};
///
/// let mut map = GranuleMap::new(1 << 30); // 1 GiB
/// let g = GranuleAddr::new(0x10_0000).unwrap();
/// map.delegate(g).unwrap();
/// // The host can no longer access the delegated granule.
/// assert!(map.check_access(Domain::Host, g).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct GranuleMap {
    size_bytes: u64,
    states: HashMap<GranuleAddr, GranuleState>,
    delegated_count: u64,
}

impl GranuleMap {
    /// Creates a map covering `size_bytes` of physical memory, all
    /// initially non-secure.
    pub fn new(size_bytes: u64) -> GranuleMap {
        GranuleMap {
            size_bytes,
            states: HashMap::new(),
            delegated_count: 0,
        }
    }

    /// Total physical memory covered, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of granules currently delegated to realm world (in any
    /// realm-side state).
    pub fn delegated_count(&self) -> u64 {
        self.delegated_count
    }

    /// Returns the state of a granule.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfRange`] if the granule lies outside memory.
    pub fn state(&self, g: GranuleAddr) -> Result<GranuleState, MemoryError> {
        if g.as_u64() >= self.size_bytes {
            return Err(MemoryError::OutOfRange);
        }
        Ok(self.states.get(&g).copied().unwrap_or_default())
    }

    fn set_state(&mut self, g: GranuleAddr, state: GranuleState) {
        if state == GranuleState::NonSecure {
            self.states.remove(&g);
        } else {
            self.states.insert(g, state);
        }
    }

    /// Transitions a non-secure granule to delegated (RMI_GRANULE_DELEGATE).
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadState`] unless the granule is non-secure;
    /// [`MemoryError::OutOfRange`] outside memory.
    pub fn delegate(&mut self, g: GranuleAddr) -> Result<(), MemoryError> {
        match self.state(g)? {
            GranuleState::NonSecure => {
                self.set_state(g, GranuleState::Delegated);
                self.delegated_count += 1;
                Ok(())
            }
            actual => Err(MemoryError::BadState { actual }),
        }
    }

    /// Transitions a delegated granule back to non-secure
    /// (RMI_GRANULE_UNDELEGATE).
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadState`] unless the granule is in the bare
    /// delegated state (assigned granules must be unassigned first).
    pub fn undelegate(&mut self, g: GranuleAddr) -> Result<(), MemoryError> {
        match self.state(g)? {
            GranuleState::Delegated => {
                self.set_state(g, GranuleState::NonSecure);
                self.delegated_count -= 1;
                Ok(())
            }
            actual => Err(MemoryError::BadState { actual }),
        }
    }

    /// Assigns a delegated granule to a realm-side use (data/RTT/REC/RD).
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadState`] unless the granule is delegated, or the
    /// requested state is not a realm-side state.
    pub fn assign(&mut self, g: GranuleAddr, state: GranuleState) -> Result<(), MemoryError> {
        if state.owner().is_none() {
            return Err(MemoryError::BadState { actual: state });
        }
        match self.state(g)? {
            GranuleState::Delegated => {
                self.set_state(g, state);
                Ok(())
            }
            actual => Err(MemoryError::BadState { actual }),
        }
    }

    /// Returns an assigned granule to the bare delegated state (when a
    /// realm object is destroyed).
    ///
    /// # Errors
    ///
    /// [`MemoryError::BadState`] unless the granule is in a realm-side
    /// state.
    pub fn unassign(&mut self, g: GranuleAddr) -> Result<(), MemoryError> {
        let st = self.state(g)?;
        if st.owner().is_some() {
            self.set_state(g, GranuleState::Delegated);
            Ok(())
        } else {
            Err(MemoryError::BadState { actual: st })
        }
    }

    /// Checks whether `domain` may access granule `g` under the GPT.
    ///
    /// Rules (paper §2.1): the monitor accesses everything; the host only
    /// non-secure granules; a realm accesses non-secure (shared/unprotected)
    /// granules and its own realm-side granules.
    ///
    /// # Errors
    ///
    /// [`MemoryError::GranuleProtectionFault`] on a violating access;
    /// [`MemoryError::OutOfRange`] outside memory.
    pub fn check_access(&self, domain: Domain, g: GranuleAddr) -> Result<(), MemoryError> {
        let state = self.state(g)?;
        let allowed = match domain {
            Domain::Monitor => true,
            Domain::Host => matches!(state, GranuleState::NonSecure),
            Domain::Realm(r) => match state {
                GranuleState::NonSecure => true,
                other => other.owner() == Some(r),
            },
        };
        if allowed {
            Ok(())
        } else {
            Err(MemoryError::GranuleProtectionFault { domain, state })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: u64 = 1 << 30;

    fn g(n: u64) -> GranuleAddr {
        GranuleAddr::new(n * GRANULE_SIZE).unwrap()
    }

    #[test]
    fn alignment_enforced() {
        assert!(GranuleAddr::new(4096).is_some());
        assert!(GranuleAddr::new(4097).is_none());
        assert_eq!(
            GranuleAddr::containing(4097),
            GranuleAddr::new(4096).unwrap()
        );
    }

    #[test]
    fn delegate_lifecycle() {
        let mut m = GranuleMap::new(MEM);
        m.delegate(g(1)).unwrap();
        assert_eq!(m.state(g(1)).unwrap(), GranuleState::Delegated);
        assert_eq!(m.delegated_count(), 1);
        m.undelegate(g(1)).unwrap();
        assert_eq!(m.state(g(1)).unwrap(), GranuleState::NonSecure);
        assert_eq!(m.delegated_count(), 0);
    }

    #[test]
    fn double_delegate_rejected() {
        let mut m = GranuleMap::new(MEM);
        m.delegate(g(1)).unwrap();
        assert!(matches!(
            m.delegate(g(1)),
            Err(MemoryError::BadState { .. })
        ));
    }

    #[test]
    fn undelegate_requires_bare_delegated() {
        let mut m = GranuleMap::new(MEM);
        m.delegate(g(1)).unwrap();
        m.assign(g(1), GranuleState::RealmData(RealmId(0))).unwrap();
        assert!(m.undelegate(g(1)).is_err());
        m.unassign(g(1)).unwrap();
        m.undelegate(g(1)).unwrap();
    }

    #[test]
    fn assign_requires_realm_state() {
        let mut m = GranuleMap::new(MEM);
        m.delegate(g(1)).unwrap();
        assert!(m.assign(g(1), GranuleState::NonSecure).is_err());
        assert!(m.assign(g(1), GranuleState::Root).is_err());
        m.assign(g(1), GranuleState::RealmRtt(RealmId(3))).unwrap();
        assert_eq!(m.state(g(1)).unwrap().owner(), Some(RealmId(3)));
    }

    #[test]
    fn host_cannot_access_realm_memory() {
        let mut m = GranuleMap::new(MEM);
        m.delegate(g(2)).unwrap();
        m.assign(g(2), GranuleState::RealmData(RealmId(1))).unwrap();
        assert!(m.check_access(Domain::Host, g(2)).is_err());
        assert!(m.check_access(Domain::Monitor, g(2)).is_ok());
        assert!(m.check_access(Domain::Realm(RealmId(1)), g(2)).is_ok());
        assert!(m.check_access(Domain::Realm(RealmId(2)), g(2)).is_err());
    }

    #[test]
    fn everyone_accesses_non_secure() {
        let m = GranuleMap::new(MEM);
        for d in [Domain::Host, Domain::Monitor, Domain::Realm(RealmId(0))] {
            assert!(m.check_access(d, g(5)).is_ok());
        }
    }

    #[test]
    fn out_of_range_detected() {
        let m = GranuleMap::new(GRANULE_SIZE * 4);
        assert!(matches!(m.state(g(4)), Err(MemoryError::OutOfRange)));
        assert!(matches!(
            m.check_access(Domain::Host, g(100)),
            Err(MemoryError::OutOfRange)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = MemoryError::GranuleProtectionFault {
            domain: Domain::Host,
            state: GranuleState::Delegated,
        };
        assert!(e.to_string().contains("granule protection fault"));
    }
}
