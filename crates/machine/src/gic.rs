//! A GIC-like interrupt controller model.
//!
//! Models the pieces of GICv3 behaviour the paper's mechanisms depend on:
//!
//! * **SGIs** (software-generated interrupts, INTIDs 0–15): inter-processor
//!   interrupts. Linux reserves 7; the core-gapping prototype allocates one
//!   more as the CVM-exit doorbell (paper §4.3).
//! * **PPIs** (private peripheral interrupts, INTIDs 16–31): per-core
//!   timers — the virtual timer is INTID 27.
//! * **SPIs** (shared peripheral interrupts, INTIDs 32+): devices (NIC,
//!   block), routed to a configurable core.
//! * **List registers** (`ich_lr<n>_el2`): the per-core array through which
//!   a hypervisor injects *virtual* interrupts into a guest. The RMM's
//!   filtered virtualization of this list is the paper's fig. 5.
//!
//! Physical delivery latency is charged by the caller (the system event
//! loop) using [`crate::HwParams::ipi_deliver`] and friends; this module is
//! the state machine only.

use std::collections::BTreeSet;
use std::fmt;

use cg_sim::{TraceHandle, TraceKind};

use crate::ids::CoreId;

/// An interrupt identifier (INTID).
///
/// # Example
///
/// ```
/// use cg_machine::IntId;
///
/// assert!(IntId::sgi(8).is_sgi());
/// assert!(IntId::VTIMER.is_ppi());
/// assert!(IntId::spi(3).is_spi());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntId(pub u32);

impl IntId {
    /// The virtual timer PPI (INTID 27).
    pub const VTIMER: IntId = IntId(27);

    /// Creates an SGI INTID.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub const fn sgi(n: u32) -> IntId {
        assert!(n < 16, "SGIs are INTIDs 0..16");
        IntId(n)
    }

    /// Creates a PPI INTID.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub const fn ppi(n: u32) -> IntId {
        assert!(n < 16, "PPIs are INTIDs 16..32");
        IntId(16 + n)
    }

    /// Creates the `n`-th SPI INTID (INTID `32 + n`).
    pub const fn spi(n: u32) -> IntId {
        IntId(32 + n)
    }

    /// Returns `true` for SGIs (0–15).
    pub const fn is_sgi(self) -> bool {
        self.0 < 16
    }

    /// Returns `true` for PPIs (16–31).
    pub const fn is_ppi(self) -> bool {
        self.0 >= 16 && self.0 < 32
    }

    /// Returns `true` for SPIs (32+).
    pub const fn is_spi(self) -> bool {
        self.0 >= 32
    }
}

impl fmt::Display for IntId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "irq{}", self.0)
    }
}

/// State of a virtual interrupt in a list register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LrState {
    /// Injected, not yet acknowledged by the guest.
    Pending,
    /// Acknowledged, not yet completed (EOI).
    Active,
    /// Re-raised while still active.
    PendingActive,
}

/// One `ich_lr<n>_el2` list register: a virtual interrupt staged for a
/// guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRegister {
    /// The virtual INTID presented to the guest.
    pub vintid: IntId,
    /// Life-cycle state.
    pub state: LrState,
}

/// Per-core physical interrupt state.
#[derive(Debug, Clone, Default)]
struct CoreIrqState {
    /// Physically pending INTIDs, lowest INTID = highest priority.
    pending: BTreeSet<IntId>,
    /// Interrupts masked at the core (PSTATE.I set)?
    masked: bool,
    /// The list registers for virtual interrupt injection on this core.
    lrs: Vec<Option<ListRegister>>,
}

/// The interrupt controller.
///
/// # Example
///
/// ```
/// use cg_machine::{CoreId, Gic, IntId};
///
/// let mut gic = Gic::new(4, 16);
/// gic.raise(CoreId(2), IntId::sgi(9));
/// assert_eq!(gic.next_pending(CoreId(2)), Some(IntId::sgi(9)));
/// assert_eq!(gic.ack(CoreId(2)), Some(IntId::sgi(9)));
/// assert_eq!(gic.next_pending(CoreId(2)), None);
/// ```
#[derive(Debug)]
pub struct Gic {
    cores: Vec<CoreIrqState>,
    num_list_regs: usize,
    /// SPI routing: index = SPI number, value = target core.
    spi_routes: Vec<CoreId>,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
}

impl Gic {
    /// Creates a controller for `num_cores` cores with `num_list_regs`
    /// list registers per core. All SPIs initially route to core 0.
    pub fn new(num_cores: u16, num_list_regs: usize) -> Gic {
        Gic {
            cores: (0..num_cores)
                .map(|_| CoreIrqState {
                    pending: BTreeSet::new(),
                    masked: false,
                    lrs: vec![None; num_list_regs],
                })
                .collect(),
            num_list_regs,
            spi_routes: Vec::new(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a structured trace; interrupt transitions are recorded
    /// through it from then on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn core(&self, core: CoreId) -> &CoreIrqState {
        &self.cores[core.index()]
    }

    fn core_mut(&mut self, core: CoreId) -> &mut CoreIrqState {
        &mut self.cores[core.index()]
    }

    /// Number of list registers per core.
    pub fn num_list_regs(&self) -> usize {
        self.num_list_regs
    }

    // ----- physical interrupts -----

    /// Marks an INTID physically pending on `core`. (Delivery latency is
    /// the caller's responsibility.)
    pub fn raise(&mut self, core: CoreId, intid: IntId) {
        let newly = self.core_mut(core).pending.insert(intid);
        self.trace.record(TraceKind::Irq, Some(core.0), || {
            format!(
                "gic.raise {intid}{}",
                if newly { "" } else { " (already pending)" }
            )
        });
    }

    /// Clears a pending INTID without acknowledging it (e.g. timer
    /// condition deasserted).
    pub fn rescind(&mut self, core: CoreId, intid: IntId) {
        self.core_mut(core).pending.remove(&intid);
    }

    /// The highest-priority pending INTID on `core`, if any and if the
    /// core is unmasked.
    pub fn next_pending(&self, core: CoreId) -> Option<IntId> {
        let c = self.core(core);
        if c.masked {
            None
        } else {
            c.pending.iter().next().copied()
        }
    }

    /// Returns `true` if any interrupt is pending regardless of masking.
    pub fn has_pending(&self, core: CoreId) -> bool {
        !self.core(core).pending.is_empty()
    }

    /// Acknowledges (and clears) the highest-priority pending INTID.
    pub fn ack(&mut self, core: CoreId) -> Option<IntId> {
        let next = self.next_pending(core)?;
        self.core_mut(core).pending.remove(&next);
        Some(next)
    }

    /// Masks or unmasks physical interrupt delivery on `core`.
    pub fn set_masked(&mut self, core: CoreId, masked: bool) {
        self.core_mut(core).masked = masked;
    }

    /// Returns `true` if `core` has interrupts masked.
    pub fn is_masked(&self, core: CoreId) -> bool {
        self.core(core).masked
    }

    /// Routes SPI number `n` (INTID `32 + n`) to `core`.
    pub fn route_spi(&mut self, n: u32, core: CoreId) {
        let idx = n as usize;
        if self.spi_routes.len() <= idx {
            self.spi_routes.resize(idx + 1, CoreId(0));
        }
        self.spi_routes[idx] = core;
    }

    /// The core SPI number `n` routes to (default core 0).
    pub fn spi_route(&self, n: u32) -> CoreId {
        self.spi_routes
            .get(n as usize)
            .copied()
            .unwrap_or(CoreId(0))
    }

    // ----- list registers (virtual interrupts) -----

    /// Reads list register `n` on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn lr(&self, core: CoreId, n: usize) -> Option<ListRegister> {
        self.core(core).lrs[n]
    }

    /// Writes list register `n` on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn set_lr(&mut self, core: CoreId, n: usize, lr: Option<ListRegister>) {
        self.core_mut(core).lrs[n] = lr;
    }

    /// Finds a free list-register slot on `core`.
    pub fn free_lr_slot(&self, core: CoreId) -> Option<usize> {
        self.core(core).lrs.iter().position(|l| l.is_none())
    }

    /// Injects a virtual interrupt into a free slot, returning the slot,
    /// or `None` if the list is full or `vintid` is already listed.
    pub fn inject_virtual(&mut self, core: CoreId, vintid: IntId) -> Option<usize> {
        if self.find_lr(core, vintid).is_some() {
            // Already staged; hardware would merge into pending state.
            let slot = self.find_lr(core, vintid).expect("just found");
            let lr = self.core(core).lrs[slot].expect("occupied");
            if lr.state == LrState::Active {
                self.core_mut(core).lrs[slot] = Some(ListRegister {
                    vintid,
                    state: LrState::PendingActive,
                });
            }
            self.trace.record(TraceKind::Irq, Some(core.0), || {
                format!("gic.inject {vintid} merged into lr{slot}")
            });
            return Some(slot);
        }
        let slot = self.free_lr_slot(core)?;
        self.core_mut(core).lrs[slot] = Some(ListRegister {
            vintid,
            state: LrState::Pending,
        });
        self.trace.record(TraceKind::Irq, Some(core.0), || {
            format!("gic.inject {vintid} -> lr{slot}")
        });
        Some(slot)
    }

    /// Finds the slot holding `vintid`, if staged.
    pub fn find_lr(&self, core: CoreId, vintid: IntId) -> Option<usize> {
        self.core(core)
            .lrs
            .iter()
            .position(|l| matches!(l, Some(lr) if lr.vintid == vintid))
    }

    /// The highest-priority *pending* virtual interrupt visible to the
    /// guest on `core`.
    pub fn next_virtual_pending(&self, core: CoreId) -> Option<IntId> {
        self.core(core)
            .lrs
            .iter()
            .flatten()
            .filter(|lr| matches!(lr.state, LrState::Pending | LrState::PendingActive))
            .map(|lr| lr.vintid)
            .min()
    }

    /// Guest acknowledges a virtual interrupt: pending → active.
    ///
    /// Returns `false` if `vintid` was not pending.
    pub fn virtual_ack(&mut self, core: CoreId, vintid: IntId) -> bool {
        if let Some(slot) = self.find_lr(core, vintid) {
            let lr = self.core(core).lrs[slot].expect("occupied");
            let new_state = match lr.state {
                LrState::Pending => LrState::Active,
                LrState::PendingActive => LrState::Active,
                LrState::Active => return false,
            };
            self.core_mut(core).lrs[slot] = Some(ListRegister {
                vintid,
                state: new_state,
            });
            true
        } else {
            false
        }
    }

    /// Guest completes (EOIs) a virtual interrupt: the slot is freed.
    ///
    /// Returns `false` if `vintid` was not active.
    pub fn virtual_eoi(&mut self, core: CoreId, vintid: IntId) -> bool {
        if let Some(slot) = self.find_lr(core, vintid) {
            let lr = self.core(core).lrs[slot].expect("occupied");
            match lr.state {
                LrState::Active => {
                    self.core_mut(core).lrs[slot] = None;
                    true
                }
                LrState::PendingActive => {
                    self.core_mut(core).lrs[slot] = Some(ListRegister {
                        vintid,
                        state: LrState::Pending,
                    });
                    true
                }
                LrState::Pending => false,
            }
        } else {
            false
        }
    }

    /// Snapshot of all occupied list registers on `core` (for the RMM's
    /// filtered-list synchronisation with the host, fig. 5).
    pub fn lr_snapshot(&self, core: CoreId) -> Vec<(usize, ListRegister)> {
        self.core(core)
            .lrs
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|lr| (i, lr)))
            .collect()
    }

    /// Clears all list registers on `core` (vCPU context unload).
    pub fn clear_lrs(&mut self, core: CoreId) {
        let n = self.num_list_regs;
        self.core_mut(core).lrs = vec![None; n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gic() -> Gic {
        Gic::new(4, 4)
    }

    const C0: CoreId = CoreId(0);

    #[test]
    fn intid_classification() {
        assert!(IntId::sgi(0).is_sgi());
        assert!(IntId::sgi(15).is_sgi());
        assert!(IntId::ppi(0).is_ppi());
        assert!(IntId::VTIMER.is_ppi());
        assert!(IntId::spi(0).is_spi());
        assert_eq!(IntId::spi(0), IntId(32));
    }

    #[test]
    fn pending_priority_is_lowest_intid() {
        let mut g = gic();
        g.raise(C0, IntId::spi(1));
        g.raise(C0, IntId::VTIMER);
        g.raise(C0, IntId::sgi(8));
        assert_eq!(g.ack(C0), Some(IntId::sgi(8)));
        assert_eq!(g.ack(C0), Some(IntId::VTIMER));
        assert_eq!(g.ack(C0), Some(IntId::spi(1)));
        assert_eq!(g.ack(C0), None);
    }

    #[test]
    fn masking_blocks_delivery_but_keeps_pending() {
        let mut g = gic();
        g.set_masked(C0, true);
        g.raise(C0, IntId::sgi(1));
        assert_eq!(g.next_pending(C0), None);
        assert!(g.has_pending(C0));
        g.set_masked(C0, false);
        assert_eq!(g.next_pending(C0), Some(IntId::sgi(1)));
    }

    #[test]
    fn rescind_clears_pending() {
        let mut g = gic();
        g.raise(C0, IntId::VTIMER);
        g.rescind(C0, IntId::VTIMER);
        assert_eq!(g.next_pending(C0), None);
    }

    #[test]
    fn spi_routing_defaults_to_core0() {
        let mut g = gic();
        assert_eq!(g.spi_route(5), CoreId(0));
        g.route_spi(5, CoreId(3));
        assert_eq!(g.spi_route(5), CoreId(3));
    }

    #[test]
    fn virtual_injection_lifecycle() {
        let mut g = gic();
        let slot = g.inject_virtual(C0, IntId::VTIMER).unwrap();
        assert_eq!(
            g.lr(C0, slot),
            Some(ListRegister {
                vintid: IntId::VTIMER,
                state: LrState::Pending
            })
        );
        assert_eq!(g.next_virtual_pending(C0), Some(IntId::VTIMER));
        assert!(g.virtual_ack(C0, IntId::VTIMER));
        assert_eq!(g.next_virtual_pending(C0), None);
        assert!(g.virtual_eoi(C0, IntId::VTIMER));
        assert_eq!(g.lr(C0, slot), None);
    }

    #[test]
    fn inject_while_active_becomes_pending_active() {
        let mut g = gic();
        g.inject_virtual(C0, IntId::sgi(1)).unwrap();
        g.virtual_ack(C0, IntId::sgi(1));
        let slot = g.inject_virtual(C0, IntId::sgi(1)).unwrap();
        assert_eq!(g.lr(C0, slot).unwrap().state, LrState::PendingActive);
        // EOI of a pending-active interrupt re-arms it as pending.
        assert!(g.virtual_eoi(C0, IntId::sgi(1)));
        assert_eq!(g.lr(C0, slot).unwrap().state, LrState::Pending);
    }

    #[test]
    fn list_fills_up() {
        let mut g = gic();
        for n in 0..4 {
            assert!(g.inject_virtual(C0, IntId::spi(n)).is_some());
        }
        assert_eq!(g.inject_virtual(C0, IntId::spi(99)), None);
        assert_eq!(g.lr_snapshot(C0).len(), 4);
        g.clear_lrs(C0);
        assert_eq!(g.lr_snapshot(C0).len(), 0);
    }

    #[test]
    fn eoi_of_pending_interrupt_fails() {
        let mut g = gic();
        g.inject_virtual(C0, IntId::sgi(2)).unwrap();
        assert!(!g.virtual_eoi(C0, IntId::sgi(2)));
        assert!(!g.virtual_ack(C0, IntId::sgi(9)));
    }

    #[test]
    fn cores_are_independent() {
        let mut g = gic();
        g.raise(CoreId(1), IntId::sgi(3));
        assert_eq!(g.next_pending(CoreId(0)), None);
        assert_eq!(g.next_pending(CoreId(1)), Some(IntId::sgi(3)));
    }
}
