//! # cg-machine — the simulated hardware platform
//!
//! A parameterised model of a many-core Arm-CCA-like server SoC, built for
//! the `coregap` reproduction of core-gapped confidential VMs. It models
//! exactly the hardware behaviour the paper's results depend on:
//!
//! * **Cores and worlds** — each core executes in Normal, Realm, or Root
//!   (monitor) world and is either owned by the host OS or dedicated to the
//!   RMM ([`cpu`]).
//! * **Microarchitectural state** — per-core L1/TLB/branch-predictor
//!   *warmth* (which drives the locality effects behind the paper's
//!   performance results) and *taint* (which drives the leakage analysis in
//!   `cg-attacks`); see [`microarch`].
//! * **Physical memory and granule protection** — a granule map enforcing
//!   which world may access which physical page ([`memory`]).
//! * **Interrupts** — a GIC-like distributor with SGIs (IPIs), PPIs
//!   (per-core timers), SPIs (devices), and per-core virtual-interrupt
//!   *list registers* (`ich_lr<n>`), the structure at the heart of the
//!   paper's fig. 5 ([`gic`]).
//! * **Timers** — per-core generic timers ([`timer`]).
//! * **Timing parameters** — every latency the simulation charges is an
//!   explicit, documented field of [`HwParams`] ([`params`]).
//!
//! The machine is *passive*: methods mutate state and return the costs and
//! interrupt requests implied, and the system event loop in `cg-core` turns
//! those into scheduled events. That keeps every subsystem a deterministic,
//! directly unit-testable state machine.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod gic;
pub mod ids;
pub mod machine;
pub mod memory;
pub mod microarch;
pub mod params;
pub mod timer;

pub use cpu::{Cpu, CpuOwner, World};
pub use gic::{Gic, IntId, ListRegister, LrState};
pub use ids::{CoreId, Domain, RealmId, SecretId};
pub use machine::Machine;
pub use memory::{GranuleAddr, GranuleMap, GranuleState, MemoryError};
pub use microarch::{MicroArch, Structure, TaintLabel};
pub use params::{HwParams, ParamError};
pub use timer::GenericTimer;
