//! Property tests for virtqueue index arithmetic: free-running u16
//! wraparound at ring-size boundaries and EVENT_IDX suppression
//! soundness under arbitrary producer/consumer interleavings.

use cg_machine::GranuleAddr;
use cg_virtio::{need_event, Descriptor, QueueLayout, VirtQueue};
use proptest::prelude::*;

/// One step of an arbitrary driver/device interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Driver submits a descriptor (and takes the kick decision).
    Push,
    /// Device drains the avail ring and completes every entry (taking
    /// the interrupt decision per completion).
    DeviceDrain,
    /// Device goes idle: re-arms `avail_event`.
    DeviceIdle,
    /// Driver drains the used ring: recycles descriptors, re-arms
    /// `used_event`.
    DriverDrain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Push),
        2 => Just(Op::DeviceDrain),
        1 => Just(Op::DeviceIdle),
        2 => Just(Op::DriverDrain),
    ]
}

fn queue(size: u16, event_idx: bool, start: u16) -> VirtQueue {
    let layout = QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), size);
    VirtQueue::seeded_at(layout, size, event_idx, start)
}

/// Drives `ops` through a queue, modelling the out-of-band signals: a
/// kick wakes the device (pending until it drains), an interrupt makes
/// the driver drain at its next opportunity. Returns
/// (submitted cookies, completed cookies, kick count, irq count).
fn run_interleaving(q: &mut VirtQueue, ops: &[Op]) -> (Vec<u64>, Vec<u64>, u64, u64) {
    let mut next_cookie = 0u64;
    let mut submitted = Vec::new();
    let mut completed = Vec::new();
    let mut device_awake = true;
    let mut irq_pending = false;

    for &op in ops {
        match op {
            Op::Push => {
                if q.push(Descriptor::net(64, next_cookie)).is_ok() {
                    submitted.push(next_cookie);
                    next_cookie += 1;
                    if q.should_kick() {
                        device_awake = true;
                    }
                }
            }
            Op::DeviceDrain => {
                if device_awake {
                    for d in q.pop_avail_batch() {
                        q.push_used(d);
                        if q.should_interrupt() {
                            irq_pending = true;
                        }
                    }
                }
            }
            Op::DeviceIdle => {
                if device_awake && q.avail_len() == 0 {
                    q.enable_kicks();
                    device_awake = false;
                }
            }
            Op::DriverDrain => {
                if irq_pending {
                    irq_pending = false;
                    for d in q.consume_used() {
                        completed.push(d.cookie);
                    }
                }
            }
        }
    }
    // Quiesce: let the pending signals play out so every in-flight
    // descriptor finishes. Correctness requires the signals alone to
    // drive this — no spontaneous polls.
    for _ in 0..4 {
        if device_awake {
            for d in q.pop_avail_batch() {
                q.push_used(d);
                if q.should_interrupt() {
                    irq_pending = true;
                }
            }
            if q.avail_len() == 0 {
                q.enable_kicks();
                device_awake = false;
            }
        }
        if irq_pending {
            irq_pending = false;
            for d in q.consume_used() {
                completed.push(d.cookie);
            }
        }
        if q.used_len() > 0 && !irq_pending && !device_awake {
            // A completion whose interrupt was suppressed must leave an
            // earlier interrupt pending — checked by the caller via the
            // completed set; nothing to do here.
            break;
        }
    }
    let stats = q.stats();
    (submitted, completed, stats.kicks, stats.irqs)
}

proptest! {
    /// Under any interleaving, notification suppression never loses
    /// work: every submitted descriptor completes, in FIFO order,
    /// driven purely by kick/interrupt signals.
    #[test]
    fn suppression_never_loses_descriptors(
        ops in prop::collection::vec(op_strategy(), 1..400),
        start in 0u16..=u16::MAX,
        size_log in 2u32..9,
    ) {
        let size = 1u16 << size_log;
        let mut q = queue(size, true, start);
        // Device starts idle with kicks armed, as after boot.
        q.enable_kicks();
        let (submitted, completed, _, _) = run_interleaving(&mut q, &ops);
        prop_assert_eq!(&completed, &submitted,
            "every submission must complete, in order");
        prop_assert_eq!(q.in_flight(), 0);
    }

    /// EVENT_IDX on and off deliver the identical descriptor sequence;
    /// suppression only ever removes notifications, never adds them.
    #[test]
    fn ablation_changes_notifications_not_payloads(
        ops in prop::collection::vec(op_strategy(), 1..400),
        start in 0u16..=u16::MAX,
    ) {
        let mut with = queue(64, true, start);
        with.enable_kicks();
        let mut without = queue(64, false, start);
        without.enable_kicks();
        let (sub_a, done_a, kicks_a, irqs_a) = run_interleaving(&mut with, &ops);
        let (sub_b, done_b, kicks_b, irqs_b) = run_interleaving(&mut without, &ops);
        prop_assert_eq!(sub_a, sub_b);
        prop_assert_eq!(done_a, done_b);
        prop_assert!(kicks_a <= kicks_b,
            "suppression may only reduce kicks ({kicks_a} > {kicks_b})");
        prop_assert!(irqs_a <= irqs_b,
            "suppression may only reduce irqs ({irqs_a} > {irqs_b})");
    }

    /// In-flight accounting survives index wraparound: the queue
    /// rejects pushes exactly when `size` descriptors are outstanding,
    /// wherever the free-running indices sit.
    #[test]
    fn ring_full_exact_at_any_index(
        start in 0u16..=u16::MAX,
        size_log in 0u32..8,
    ) {
        let size = 1u16 << size_log;
        let mut q = queue(size, true, start);
        for i in 0..size {
            prop_assert!(q.push(Descriptor::net(64, u64::from(i))).is_ok());
        }
        prop_assert!(q.push(Descriptor::net(64, 999)).is_err());
        prop_assert_eq!(q.in_flight(), size);
        // Recycle one descriptor end-to-end; capacity returns.
        let d = q.pop_avail().unwrap();
        q.push_used(d);
        q.should_interrupt();
        prop_assert_eq!(q.consume_used().len(), 1);
        prop_assert!(q.push(Descriptor::net(64, 999)).is_ok());
        prop_assert!(q.push(Descriptor::net(64, 1000)).is_err());
    }

    /// The spec predicate: notify iff `event` lies in the half-open
    /// wrapping window `(old, new]`.
    #[test]
    fn need_event_is_window_membership(
        event in 0u16..=u16::MAX,
        old in 0u16..=u16::MAX,
        advance in 0u16..1024,
    ) {
        let new = old.wrapping_add(advance);
        let in_window = event.wrapping_sub(old).wrapping_sub(1) < advance;
        prop_assert_eq!(need_event(event, new, old), in_window);
    }
}
