//! Split virtqueues in unprotected shared memory.
//!
//! The paper's residual I/O bottleneck (§5.3) is that every virtio kick
//! is a synchronous VM exit through the host — exactly the kind of
//! shared-core round trip core gapping exists to remove. This crate
//! models the fix: virtio 1.x *split* virtqueues (descriptor table +
//! avail ring + used ring) laid out in the machine's `NonSecure` shared
//! granules (the same unprotected memory that carries the run-call
//! channels), with `VIRTIO_F_EVENT_IDX`-style notification suppression
//! on both directions. Guest submissions become descriptor writes plus
//! an occasional cross-core doorbell; host completions become used-ring
//! writes plus an occasional delegated interrupt.
//!
//! Index arithmetic is the real thing: `avail_idx`/`used_idx` are
//! free-running `u16`s that wrap modulo 2^16 while the ring itself wraps
//! modulo its (power-of-two) size, and the suppression predicate is the
//! spec's `vring_need_event`. Payloads are simulation-level
//! [`Descriptor`]s rather than guest-physical scatter lists.
//!
//! # Example
//!
//! ```
//! use cg_machine::GranuleAddr;
//! use cg_virtio::{Descriptor, QueueLayout, VirtQueue};
//!
//! let layout = QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), 256);
//! let mut q = VirtQueue::new(layout, 256, true);
//! q.enable_kicks(); // device idle: next submission must notify
//! q.push(Descriptor::net(1500, 7)).unwrap();
//! assert!(q.should_kick()); // first submission after idle kicks
//! q.push(Descriptor::net(1500, 8)).unwrap();
//! assert!(!q.should_kick()); // device now active: suppressed
//! assert_eq!(q.pop_avail().unwrap().cookie, 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;

use cg_machine::memory::GRANULE_SIZE;
use cg_machine::GranuleAddr;
use cg_sim::TraceCtx;

/// The virtio 1.x split-ring suppression predicate (`vring_need_event`):
/// should the producer notify, given the consumer-published `event`
/// index, the producer's new free-running index, and its value at the
/// previous notification decision? All arithmetic wraps modulo 2^16.
#[inline]
pub fn need_event(event: u16, new_idx: u16, old_idx: u16) -> bool {
    new_idx.wrapping_sub(event).wrapping_sub(1) < new_idx.wrapping_sub(old_idx)
}

/// One queue entry: the simulation-level stand-in for a descriptor
/// chain (the guest-physical scatter list is not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Payload length in bytes.
    pub bytes: u64,
    /// Opaque routing cookie: the flow id for network packets, the
    /// request tag for disk requests.
    pub cookie: u64,
    /// Device-writable chain (disk write / inbound buffer).
    pub is_write: bool,
    /// Causal trace context riding the descriptor across the publish →
    /// backend → completion → drain hops. Purely observational: never
    /// read by queue logic, `NULL` when tracing is off.
    pub ctx: TraceCtx,
}

impl Descriptor {
    /// A network-transmit descriptor carrying `bytes` on `flow`.
    pub fn net(bytes: u64, flow: u64) -> Descriptor {
        Descriptor {
            bytes,
            cookie: flow,
            is_write: false,
            ctx: TraceCtx::NULL,
        }
    }

    /// A disk-request descriptor for `tag`.
    pub fn disk(bytes: u64, tag: u64, is_write: bool) -> Descriptor {
        Descriptor {
            bytes,
            cookie: tag,
            is_write,
            ctx: TraceCtx::NULL,
        }
    }

    /// The same descriptor carrying causal context `ctx`.
    pub fn with_ctx(mut self, ctx: TraceCtx) -> Descriptor {
        self.ctx = ctx;
        self
    }
}

/// The queue is full: every descriptor is in flight (submitted but not
/// yet recycled by a used-ring consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "virtqueue full: all descriptors in flight")
    }
}

impl std::error::Error for QueueFull {}

/// Where a queue's three rings live in the shared (NonSecure) granule
/// space.
///
/// Sizes follow the virtio 1.x split-ring formulas — 16 bytes per
/// descriptor, `6 + 2·size + 2` for the avail ring (the trailing word is
/// `used_event`), `6 + 8·size + 2` for the used ring (trailing
/// `avail_event`) — with each ring granule-aligned so host and guest map
/// them independently, as the run-call mailboxes are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// Descriptor table base.
    pub desc: GranuleAddr,
    /// Avail (driver → device) ring base.
    pub avail: GranuleAddr,
    /// Used (device → driver) ring base.
    pub used: GranuleAddr,
    /// Total granules the queue occupies starting at `desc`.
    pub granules: u64,
}

impl QueueLayout {
    /// Lays a queue of `size` descriptors out at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two (a virtio split
    /// ring requirement).
    pub fn new(base: GranuleAddr, size: u16) -> QueueLayout {
        assert!(
            size != 0 && size.is_power_of_two(),
            "virtqueue size must be a non-zero power of two"
        );
        let granules_for = |bytes: u64| bytes.div_ceil(GRANULE_SIZE);
        let desc_bytes = 16 * u64::from(size);
        let avail_bytes = 6 + 2 * u64::from(size) + 2;
        let used_bytes = 6 + 8 * u64::from(size) + 2;
        let desc = base;
        let avail = desc.offset(granules_for(desc_bytes));
        let used = avail.offset(granules_for(avail_bytes));
        let granules =
            granules_for(desc_bytes) + granules_for(avail_bytes) + granules_for(used_bytes);
        QueueLayout {
            desc,
            avail,
            used,
            granules,
        }
    }
}

/// Per-queue notification and throughput statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Descriptors the driver submitted.
    pub submitted: u64,
    /// Entries the device completed onto the used ring.
    pub completed: u64,
    /// Kick decisions that required a doorbell.
    pub kicks: u64,
    /// Kick decisions EVENT_IDX suppressed.
    pub kicks_suppressed: u64,
    /// Completion decisions that required an interrupt.
    pub irqs: u64,
    /// Completion decisions EVENT_IDX suppressed.
    pub irqs_suppressed: u64,
    /// Largest avail batch a single device poll consumed.
    pub max_batch: u64,
}

/// One split virtqueue, modelling both the driver (guest) side and the
/// device (host I/O plane) side.
///
/// Free-running `u16` indices, spec suppression arithmetic, FIFO
/// payload transport. With `event_idx` off every kick and every
/// completion notifies (the suppression ablation).
#[derive(Debug)]
pub struct VirtQueue {
    layout: QueueLayout,
    size: u16,
    event_idx: bool,
    // Driver (guest) side.
    avail_idx: u16,
    used_event: u16,
    last_used_seen: u16,
    kick_cursor: u16,
    // Device (host) side.
    used_idx: u16,
    avail_event: u16,
    last_avail_seen: u16,
    irq_cursor: u16,
    // Payload transport (stands in for the descriptor table contents).
    avail_ring: VecDeque<Descriptor>,
    used_ring: VecDeque<Descriptor>,
    stats: QueueStats,
}

impl VirtQueue {
    /// Creates an empty queue of `size` descriptors at `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(layout: QueueLayout, size: u16, event_idx: bool) -> VirtQueue {
        VirtQueue::seeded_at(layout, size, event_idx, 0)
    }

    /// As [`VirtQueue::new`], but starts every free-running index at
    /// `start` instead of zero — lets tests sit the indices right below
    /// the 2^16 wrap without performing 65 000 warm-up operations.
    pub fn seeded_at(layout: QueueLayout, size: u16, event_idx: bool, start: u16) -> VirtQueue {
        assert!(
            size != 0 && size.is_power_of_two(),
            "virtqueue size must be a non-zero power of two"
        );
        VirtQueue {
            layout,
            size,
            event_idx,
            avail_idx: start,
            used_event: start,
            last_used_seen: start,
            kick_cursor: start,
            used_idx: start,
            avail_event: start,
            last_avail_seen: start,
            irq_cursor: start,
            avail_ring: VecDeque::new(),
            used_ring: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// The queue's shared-memory layout.
    pub fn layout(&self) -> QueueLayout {
        self.layout
    }

    /// Ring size (descriptor count).
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Whether EVENT_IDX suppression is negotiated.
    pub fn event_idx(&self) -> bool {
        self.event_idx
    }

    /// Notification and throughput statistics so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Descriptors in flight: submitted but not yet recycled by the
    /// driver consuming their used entries.
    pub fn in_flight(&self) -> u16 {
        self.avail_idx.wrapping_sub(self.last_used_seen)
    }

    // ---------------- driver (guest) side ----------------

    /// Driver submits one descriptor: writes the table entry and
    /// publishes it on the avail ring.
    pub fn push(&mut self, d: Descriptor) -> Result<(), QueueFull> {
        if self.in_flight() >= self.size {
            return Err(QueueFull);
        }
        self.avail_ring.push_back(d);
        self.avail_idx = self.avail_idx.wrapping_add(1);
        self.stats.submitted += 1;
        Ok(())
    }

    /// Driver notification decision for everything published since the
    /// previous decision. Always `true` without EVENT_IDX; with it, the
    /// spec predicate against the device-published `avail_event` — a
    /// stale `avail_event` (device actively polling) suppresses the
    /// kick, a current one (device about to idle) demands it.
    pub fn should_kick(&mut self) -> bool {
        let old = self.kick_cursor;
        self.kick_cursor = self.avail_idx;
        let kick = !self.event_idx || need_event(self.avail_event, self.avail_idx, old);
        if kick {
            self.stats.kicks += 1;
        } else {
            self.stats.kicks_suppressed += 1;
        }
        kick
    }

    /// Driver drains the used ring, recycling descriptors and publishing
    /// `used_event` so the next completion after this point interrupts.
    pub fn consume_used(&mut self) -> Vec<Descriptor> {
        let drained: Vec<Descriptor> = self.used_ring.drain(..).collect();
        self.last_used_seen = self.used_idx;
        self.used_event = self.used_idx;
        drained
    }

    /// Used entries the driver has not consumed yet.
    pub fn used_len(&self) -> u16 {
        self.used_idx.wrapping_sub(self.last_used_seen)
    }

    // ---------------- device (host I/O plane) side ----------------

    /// Avail entries the device has not consumed yet.
    pub fn avail_len(&self) -> u16 {
        self.avail_idx.wrapping_sub(self.last_avail_seen)
    }

    /// Device consumes the next avail entry, if any.
    pub fn pop_avail(&mut self) -> Option<Descriptor> {
        let d = self.avail_ring.pop_front()?;
        self.last_avail_seen = self.last_avail_seen.wrapping_add(1);
        Some(d)
    }

    /// Device drains every currently-published avail entry as one batch.
    pub fn pop_avail_batch(&mut self) -> Vec<Descriptor> {
        let batch: Vec<Descriptor> = self.avail_ring.drain(..).collect();
        self.last_avail_seen = self.last_avail_seen.wrapping_add(batch.len() as u16);
        self.stats.max_batch = self.stats.max_batch.max(batch.len() as u64);
        batch
    }

    /// Device is about to idle: publish `avail_event` at the
    /// everything-seen point so exactly the next submission kicks.
    /// While the device polls, `avail_event` goes stale and submissions
    /// coalesce kick-free — the EVENT_IDX batching the fast path lives
    /// on.
    pub fn enable_kicks(&mut self) {
        self.avail_event = self.avail_idx;
    }

    /// Device completes one entry onto the used ring.
    pub fn push_used(&mut self, d: Descriptor) {
        self.used_ring.push_back(d);
        self.used_idx = self.used_idx.wrapping_add(1);
        self.stats.completed += 1;
    }

    /// Device interrupt decision for everything completed since the
    /// previous decision: the mirror of [`VirtQueue::should_kick`]
    /// against the driver-published `used_event`. While an earlier
    /// completion interrupt is still undelivered the driver has not
    /// re-armed `used_event`, so follow-on completions coalesce onto it.
    pub fn should_interrupt(&mut self) -> bool {
        let old = self.irq_cursor;
        self.irq_cursor = self.used_idx;
        let irq = !self.event_idx || need_event(self.used_event, self.used_idx, old);
        if irq {
            self.stats.irqs += 1;
        } else {
            self.stats.irqs_suppressed += 1;
        }
        irq
    }
}

/// One vCPU's queue pair for a device: a `tx` queue for submissions
/// (transmit / disk requests, completions posted back as used entries)
/// and an `rx` queue of guest-posted receive buffers the device fills.
#[derive(Debug)]
pub struct QueuePair {
    /// Driver → device submissions.
    pub tx: VirtQueue,
    /// Device → driver deliveries into pre-posted buffers.
    pub rx: VirtQueue,
}

impl QueuePair {
    /// Lays both queues out back-to-back starting at `base` and
    /// pre-posts every rx buffer, as a driver does at setup.
    pub fn new(base: GranuleAddr, size: u16, event_idx: bool) -> QueuePair {
        let tx_layout = QueueLayout::new(base, size);
        let rx_layout = QueueLayout::new(base.offset(tx_layout.granules), size);
        let tx = VirtQueue::new(tx_layout, size, event_idx);
        let mut rx = VirtQueue::new(rx_layout, size, event_idx);
        for _ in 0..size {
            rx.push(Descriptor {
                bytes: 0,
                cookie: 0,
                is_write: true,
                ctx: TraceCtx::NULL,
            })
            .expect("empty rx ring accepts its own size");
        }
        QueuePair { tx, rx }
    }

    /// Total granules of shared memory the pair occupies.
    pub fn granules(&self) -> u64 {
        self.tx.layout().granules + self.rx.layout().granules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> QueueLayout {
        QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), 256)
    }

    fn q(size: u16, event_idx: bool) -> VirtQueue {
        VirtQueue::new(
            QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), size),
            size,
            event_idx,
        )
    }

    #[test]
    fn layout_is_granule_aligned_and_ordered() {
        let l = layout();
        assert!(l.desc.as_u64() < l.avail.as_u64());
        assert!(l.avail.as_u64() < l.used.as_u64());
        // 256 descriptors: 4096 B table, 520 B avail, 2056 B used.
        assert_eq!(l.granules, 1 + 1 + 1);
        assert_eq!(l.used.as_u64() - l.desc.as_u64(), 2 * GRANULE_SIZE);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_rejected() {
        QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), 96);
    }

    #[test]
    fn fifo_transport_and_full_detection() {
        let mut v = q(4, true);
        for i in 0..4 {
            v.push(Descriptor::net(64, i)).unwrap();
        }
        assert_eq!(v.push(Descriptor::net(64, 9)), Err(QueueFull));
        assert_eq!(v.in_flight(), 4);
        let batch = v.pop_avail_batch();
        assert_eq!(
            batch.iter().map(|d| d.cookie).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        // Still full: descriptors recycle only on used consumption.
        assert_eq!(v.push(Descriptor::net(64, 9)), Err(QueueFull));
        for d in batch {
            v.push_used(d);
        }
        assert!(v.consume_used().len() == 4);
        assert_eq!(v.in_flight(), 0);
        v.push(Descriptor::net(64, 9)).unwrap();
    }

    #[test]
    fn event_idx_gives_one_kick_per_idle_period() {
        let mut v = q(256, true);
        v.enable_kicks();
        v.push(Descriptor::net(64, 0)).unwrap();
        assert!(v.should_kick(), "first submission after idle kicks");
        for i in 1..100 {
            v.push(Descriptor::net(64, i)).unwrap();
            assert!(!v.should_kick(), "device active: kick {i} suppressed");
        }
        assert_eq!(v.pop_avail_batch().len(), 100);
        v.enable_kicks();
        v.push(Descriptor::net(64, 100)).unwrap();
        assert!(v.should_kick(), "idle again: next submission kicks");
        assert_eq!(v.stats().kicks, 2);
        assert_eq!(v.stats().kicks_suppressed, 99);
    }

    #[test]
    fn suppression_off_always_kicks_and_interrupts() {
        let mut v = q(256, false);
        for i in 0..10 {
            v.push(Descriptor::net(64, i)).unwrap();
            assert!(v.should_kick());
        }
        for d in v.pop_avail_batch() {
            v.push_used(d);
            assert!(v.should_interrupt());
        }
        assert_eq!(v.stats().kicks, 10);
        assert_eq!(v.stats().irqs, 10);
        assert_eq!(v.stats().kicks_suppressed, 0);
    }

    #[test]
    fn completions_coalesce_until_driver_drains() {
        let mut v = q(256, true);
        for i in 0..3 {
            v.push(Descriptor::disk(4096, i, false)).unwrap();
        }
        let batch = v.pop_avail_batch();
        v.push_used(batch[0]);
        assert!(v.should_interrupt(), "first completion interrupts");
        v.push_used(batch[1]);
        assert!(
            !v.should_interrupt(),
            "second coalesces onto the pending irq"
        );
        let drained = v.consume_used();
        assert_eq!(drained.len(), 2);
        v.push_used(batch[2]);
        assert!(v.should_interrupt(), "post-drain completion re-interrupts");
    }

    #[test]
    fn indices_wrap_at_u16_boundary() {
        let l = QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), 8);
        let mut v = VirtQueue::seeded_at(l, 8, true, u16::MAX - 2);
        v.enable_kicks();
        for i in 0..6u64 {
            v.push(Descriptor::net(64, i)).unwrap();
            v.should_kick();
        }
        assert_eq!(v.avail_len(), 6);
        let batch = v.pop_avail_batch();
        assert_eq!(batch.len(), 6);
        for d in batch {
            v.push_used(d);
        }
        assert_eq!(v.used_len(), 6);
        let drained = v.consume_used();
        assert_eq!(
            drained.iter().map(|d| d.cookie).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4, 5]
        );
        assert_eq!(v.in_flight(), 0);
    }

    #[test]
    fn queue_pair_prefills_rx_and_does_not_overlap() {
        let pair = QueuePair::new(GranuleAddr::new(0x9000_0000).unwrap(), 128, true);
        assert_eq!(pair.rx.avail_len(), 128, "rx buffers pre-posted");
        assert_eq!(pair.tx.avail_len(), 0);
        let tx_end = pair.tx.layout().desc.as_u64() + pair.tx.layout().granules * GRANULE_SIZE;
        assert!(
            pair.rx.layout().desc.as_u64() >= tx_end,
            "rings must not overlap"
        );
    }

    #[test]
    fn need_event_matches_spec_cases() {
        // Straight from the virtio spec: notify iff the consumer's event
        // index lies in the half-open window (old, new].
        assert!(need_event(1, 2, 1));
        assert!(!need_event(0, 2, 1));
        assert!(!need_event(2, 2, 1));
        // Wrapping window.
        assert!(need_event(u16::MAX, 1, u16::MAX - 1));
        assert!(!need_event(3, 1, u16::MAX - 1));
    }

    #[test]
    fn need_event_wrap_boundary_exactly_one_past_event() {
        // The audited boundary: new_idx advanced exactly once past the
        // armed event index, with the increment crossing the u16
        // wraparound. Arming at event = old = 0xFFFF and publishing one
        // entry (new = 0x0000) must notify:
        assert!(need_event(u16::MAX, 0, u16::MAX));
        // An event index one before the window must not — it was
        // already passed before `old`:
        assert!(!need_event(u16::MAX - 1, 0, u16::MAX));
        // The mirror boundary away from the wrap behaves identically.
        assert!(need_event(7, 8, 7));
        assert!(!need_event(6, 8, 7));
        // new == old (no progress since the last decision): never
        // notify, on either side of the wrap.
        assert!(!need_event(u16::MAX, u16::MAX, u16::MAX));
        assert!(!need_event(0, 0, 0));
        // Window spanning the wrap, probing every edge: the notify
        // window is [old, new) mod 2^16 — old included, new excluded.
        assert!(need_event(u16::MAX - 3, 2, u16::MAX - 3)); // old: included
        assert!(need_event(u16::MAX, 2, u16::MAX - 3)); // inside, pre-wrap
        assert!(need_event(1, 2, u16::MAX - 3)); // inside, post-wrap
        assert!(!need_event(2, 2, u16::MAX - 3)); // new itself: excluded
        assert!(!need_event(3, 2, u16::MAX - 3)); // past new: excluded
    }

    #[test]
    fn wrap_boundary_kick_fires_on_first_post_wrap_submission() {
        // End-to-end pin of the same boundary through VirtQueue: arm at
        // 0xFFFF, publish one descriptor (index wraps to 0x0000) — the
        // kick must fire, and a second publish must coalesce.
        let l = QueueLayout::new(GranuleAddr::new(0x8000_0000).unwrap(), 8);
        let mut v = VirtQueue::seeded_at(l, 8, true, u16::MAX);
        v.enable_kicks();
        v.push(Descriptor::net(64, 0)).unwrap();
        assert!(v.should_kick(), "first submission across the wrap kicks");
        v.push(Descriptor::net(64, 1)).unwrap();
        assert!(!v.should_kick(), "second submission coalesces");
    }
}
