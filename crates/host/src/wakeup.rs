//! The wake-up thread (paper fig. 4).
//!
//! One IPI number is all the prototype gets, so the doorbell conveys no
//! payload. The handler activates this FIFO-priority thread, which scans
//! the run channels of all vCPUs for posted exits, unblocks the matching
//! vCPU threads, re-scans until it finds nothing new (exits arriving
//! during the scan coalesce), and suspends until the next IPI.

use cg_cca::RecId;
use cg_sim::{SimDuration, TraceHandle, TraceKind};

use crate::thread::ThreadId;

/// Wake-up thread state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Suspended, waiting for the doorbell IPI.
    Suspended,
    /// Activated (IPI taken), waiting for CPU or scanning.
    Active,
}

/// The wake-up thread's bookkeeping.
///
/// The thread itself is a scheduler entity; this struct tracks its
/// activation state and which vCPU channels it watches.
#[derive(Debug)]
pub struct WakeupThread {
    thread: ThreadId,
    state: State,
    /// The vCPUs whose run channels this thread scans.
    watched: Vec<RecId>,
    /// A doorbell rang while a scan was in progress: re-scan before
    /// suspending (closes the lost-wakeup race of fig. 4).
    rescan_requested: bool,
    activations: u64,
    vcpus_woken: u64,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
}

impl WakeupThread {
    /// Creates the bookkeeping for wake-up thread `thread`.
    pub fn new(thread: ThreadId) -> WakeupThread {
        WakeupThread {
            thread,
            state: State::Suspended,
            watched: Vec::new(),
            rescan_requested: false,
            activations: 0,
            vcpus_woken: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a structured trace; activation/suspension decisions are
    /// recorded through it from then on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The scheduler thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Registers a vCPU run channel to scan.
    pub fn watch(&mut self, rec: RecId) {
        if !self.watched.contains(&rec) {
            self.watched.push(rec);
        }
    }

    /// Unregisters a vCPU (destroyed).
    pub fn unwatch(&mut self, rec: RecId) {
        self.watched.retain(|r| *r != rec);
    }

    /// The watched vCPUs, in registration order (scan order).
    pub fn watched(&self) -> &[RecId] {
        &self.watched
    }

    /// The doorbell IPI arrived. Returns `true` if the thread was
    /// suspended and must now be woken (scheduled); `false` if it is
    /// already active (the notification coalesces).
    pub fn on_doorbell(&mut self) -> bool {
        let must_wake = match self.state {
            State::Suspended => {
                self.state = State::Active;
                self.activations += 1;
                true
            }
            State::Active => {
                self.rescan_requested = true;
                false
            }
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "wakeup.doorbell {}",
                if must_wake {
                    "activates"
                } else {
                    "coalesced -> rescan"
                }
            )
        });
        must_wake
    }

    /// Returns `true` while activated.
    pub fn is_active(&self) -> bool {
        self.state == State::Active
    }

    /// The scan found and woke `count` vCPU threads.
    pub fn record_woken(&mut self, count: u64) {
        self.vcpus_woken += count;
    }

    /// Attempts to suspend after a scan. Returns `false` (staying
    /// active) if a doorbell rang during the scan — the caller must scan
    /// again; `true` if the thread is now suspended.
    pub fn try_suspend(&mut self) -> bool {
        let suspended = if std::mem::replace(&mut self.rescan_requested, false) {
            false
        } else {
            self.state = State::Suspended;
            true
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "wakeup.try_suspend {}",
                if suspended {
                    "suspended"
                } else {
                    "rescan pending"
                }
            )
        });
        suspended
    }

    /// Unconditionally suspends the thread until the next doorbell.
    ///
    /// Unlike [`try_suspend`](Self::try_suspend) this does not honour a
    /// pending rescan request, so it is only legal when the caller knows
    /// none can be pending (e.g. teardown before any channel is
    /// watched). Suspending over a pending rescan silently discards a
    /// doorbell — the exact fig. 4 lost-wakeup hazard `try_suspend`
    /// exists to close — so that misuse is a debug-asserted bug.
    pub fn suspend(&mut self) {
        debug_assert!(
            !self.rescan_requested,
            "suspend() would discard a pending rescan request (lost wakeup); \
             use try_suspend() after a scan"
        );
        self.rescan_requested = false;
        self.state = State::Suspended;
    }

    /// The periodic watchdog found a visible posted exit while the
    /// thread was suspended: the doorbell IPI that should have activated
    /// it was lost. Returns `true` if the thread was suspended and is
    /// now activated (the caller must schedule it); `false` if it is
    /// already active — the in-flight scan will pick the work up, so no
    /// rescan is forced and the watchdog simply checks again next
    /// period.
    pub fn on_watchdog(&mut self) -> bool {
        let must_wake = match self.state {
            State::Suspended => {
                self.state = State::Active;
                self.activations += 1;
                true
            }
            State::Active => false,
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "wakeup.watchdog {}",
                if must_wake {
                    "recovers lost doorbell"
                } else {
                    "thread already active"
                }
            )
        });
        must_wake
    }

    /// Cost of scanning `n` channels (cache-line reads of shared state).
    pub fn scan_cost(n: usize, per_channel: SimDuration) -> SimDuration {
        per_channel * (n.max(1) as u64)
    }

    /// Total doorbell activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total vCPU threads woken.
    pub fn vcpus_woken(&self) -> u64 {
        self.vcpus_woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_machine::RealmId;

    fn rec(i: u32) -> RecId {
        RecId::new(RealmId(0), i)
    }

    #[test]
    fn doorbell_coalesces_while_active() {
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_doorbell());
        assert!(!w.on_doorbell());
        assert!(w.is_active());
        // The coalesced ring forces one rescan before suspension sticks;
        // suspend() would discard it (see the regression test below).
        assert!(!w.try_suspend());
        assert!(w.try_suspend());
        assert!(w.on_doorbell());
        assert_eq!(w.activations(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pending rescan")]
    fn suspend_with_pending_rescan_is_a_bug() {
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_doorbell());
        assert!(!w.on_doorbell()); // coalesced ring: rescan now pending
        w.suspend(); // would lose the wakeup — must trip the debug assert
    }

    #[test]
    fn suspend_without_pending_rescan_is_fine() {
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_doorbell());
        w.suspend();
        assert!(!w.is_active());
        assert!(w.on_doorbell());
        assert_eq!(w.activations(), 2);
    }

    #[test]
    fn watchdog_activates_only_when_suspended() {
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_watchdog(), "suspended thread is recovered");
        assert!(w.is_active());
        assert!(!w.on_watchdog(), "active thread needs no recovery");
        // No stale rescan request is left behind by the watchdog path.
        assert!(w.try_suspend());
        assert_eq!(w.activations(), 1);
        assert!(w.on_doorbell());
        assert_eq!(w.activations(), 2);
    }

    #[test]
    fn coalesced_doorbell_forces_rescan() {
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_doorbell());
        // A ring during the scan...
        assert!(!w.on_doorbell());
        // ...prevents suspension once, forcing another scan.
        assert!(!w.try_suspend());
        assert!(w.is_active());
        assert!(w.try_suspend());
        assert!(!w.is_active());
    }

    #[test]
    fn watch_list_is_deduplicated_and_ordered() {
        let mut w = WakeupThread::new(ThreadId(1));
        w.watch(rec(0));
        w.watch(rec(1));
        w.watch(rec(0));
        assert_eq!(w.watched(), &[rec(0), rec(1)]);
        w.unwatch(rec(0));
        assert_eq!(w.watched(), &[rec(1)]);
    }

    #[test]
    fn scan_cost_scales_with_channels() {
        let per = SimDuration::nanos(80);
        assert_eq!(WakeupThread::scan_cost(0, per), per); // floor of one line
        assert_eq!(WakeupThread::scan_cost(4, per), per * 4);
    }

    #[test]
    fn multiple_coalesced_rings_cause_exactly_one_extra_scan() {
        // The fig. 4 lost-wakeup fix must not over-scan either: any number
        // of doorbells arriving during one scan collapse into a single
        // rescan request, so the thread performs exactly one extra scan
        // before suspending.
        let mut w = WakeupThread::new(ThreadId(1));
        assert!(w.on_doorbell(), "first ring activates");
        // Three more rings land while the scan is in flight.
        assert!(!w.on_doorbell());
        assert!(!w.on_doorbell());
        assert!(!w.on_doorbell());
        let mut scans = 0;
        while !w.try_suspend() {
            scans += 1;
            assert!(scans < 10, "rescan requests must not self-renew");
        }
        assert_eq!(scans, 1, "coalesced rings trigger exactly one rescan");
        assert!(!w.is_active());
        assert_eq!(w.activations(), 1);
    }

    #[test]
    fn woken_accounting() {
        let mut w = WakeupThread::new(ThreadId(1));
        w.record_woken(3);
        w.record_woken(1);
        assert_eq!(w.vcpus_woken(), 4);
    }
}
