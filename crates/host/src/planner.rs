//! The user-mode core planner (paper §3).
//!
//! Performs admission control on CVMs, assigns dedicated cores, and
//! orchestrates dedication/reclamation. It complements cluster-level VM
//! schedulers by making explicit, long-lived placement decisions inside a
//! node. The planner prefers contiguous core ranges to limit long-term
//! fragmentation, and (as the paper's future-work extension) supports
//! coarse-grained replanning.

use std::collections::BTreeMap;
use std::fmt;

use cg_machine::{CoreId, RealmId};

/// Errors from admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerError {
    /// Not enough free cores to admit the CVM.
    InsufficientCores {
        /// Cores requested.
        requested: u16,
        /// Cores available.
        available: u16,
    },
    /// The realm already has an allocation.
    AlreadyAdmitted,
    /// The realm has no allocation.
    NotAdmitted,
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::InsufficientCores {
                requested,
                available,
            } => write!(
                f,
                "insufficient cores: requested {requested}, available {available}"
            ),
            PlannerError::AlreadyAdmitted => write!(f, "realm already admitted"),
            PlannerError::NotAdmitted => write!(f, "realm not admitted"),
        }
    }
}

impl std::error::Error for PlannerError {}

/// The core planner.
///
/// # Example
///
/// ```
/// use cg_host::CorePlanner;
/// use cg_machine::{CoreId, RealmId};
///
/// let mut planner = CorePlanner::new((1..8).map(CoreId));
/// let cores = planner.admit(RealmId(0), 3).unwrap();
/// assert_eq!(cores.len(), 3);
/// assert_eq!(planner.free_cores(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CorePlanner {
    /// Pool of cores the planner may dedicate (excludes host cores).
    pool: Vec<CoreId>,
    /// Allocations: realm → cores.
    allocations: BTreeMap<RealmId, Vec<CoreId>>,
    /// Cores currently free, kept sorted.
    free: Vec<CoreId>,
}

impl CorePlanner {
    /// Creates a planner over the given dedicable core pool.
    pub fn new(pool: impl IntoIterator<Item = CoreId>) -> CorePlanner {
        let mut pool: Vec<CoreId> = pool.into_iter().collect();
        pool.sort();
        pool.dedup();
        CorePlanner {
            free: pool.clone(),
            pool,
            allocations: BTreeMap::new(),
        }
    }

    /// Number of free (dedicable, unallocated) cores.
    pub fn free_cores(&self) -> u16 {
        self.free.len() as u16
    }

    /// Total pool size.
    pub fn pool_size(&self) -> u16 {
        self.pool.len() as u16
    }

    /// The allocation of `realm`, if admitted.
    pub fn allocation(&self, realm: RealmId) -> Option<&[CoreId]> {
        self.allocations.get(&realm).map(|v| v.as_slice())
    }

    /// Admits a CVM needing `num_cores` dedicated cores.
    ///
    /// Prefers the longest run of contiguous free cores (first-fit on
    /// contiguous runs, falling back to scattered cores) to keep future
    /// allocations compact.
    ///
    /// # Errors
    ///
    /// [`PlannerError::InsufficientCores`] or
    /// [`PlannerError::AlreadyAdmitted`].
    pub fn admit(&mut self, realm: RealmId, num_cores: u16) -> Result<Vec<CoreId>, PlannerError> {
        if self.allocations.contains_key(&realm) {
            return Err(PlannerError::AlreadyAdmitted);
        }
        if num_cores > self.free.len() as u16 {
            return Err(PlannerError::InsufficientCores {
                requested: num_cores,
                available: self.free.len() as u16,
            });
        }
        let chosen = self.choose(num_cores as usize);
        self.free.retain(|c| !chosen.contains(c));
        self.allocations.insert(realm, chosen.clone());
        Ok(chosen)
    }

    /// Picks `n` cores: the first contiguous run of length ≥ n, else the
    /// first `n` free cores.
    fn choose(&self, n: usize) -> Vec<CoreId> {
        if n == 0 {
            return Vec::new();
        }
        let mut run_start = 0;
        for i in 1..=self.free.len() {
            let contiguous = i < self.free.len() && self.free[i].0 == self.free[i - 1].0 + 1;
            if !contiguous {
                if i - run_start >= n {
                    return self.free[run_start..run_start + n].to_vec();
                }
                run_start = i;
            }
        }
        self.free[..n].to_vec()
    }

    /// Releases `realm`'s cores back to the pool.
    ///
    /// # Errors
    ///
    /// [`PlannerError::NotAdmitted`].
    pub fn release(&mut self, realm: RealmId) -> Result<Vec<CoreId>, PlannerError> {
        let cores = self
            .allocations
            .remove(&realm)
            .ok_or(PlannerError::NotAdmitted)?;
        self.free.extend(cores.iter().copied());
        self.free.sort();
        Ok(cores)
    }

    /// Fragmentation metric: 1 − (longest contiguous free run / free
    /// cores). 0 means perfectly compact; approaching 1 means heavily
    /// fragmented.
    pub fn fragmentation(&self) -> f64 {
        if self.free.is_empty() {
            return 0.0;
        }
        let mut longest = 1usize;
        let mut current = 1usize;
        for i in 1..self.free.len() {
            if self.free[i].0 == self.free[i - 1].0 + 1 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 1;
            }
        }
        1.0 - longest as f64 / self.free.len() as f64
    }

    /// The future-work extension (paper §3): recompute a compact
    /// placement for every admitted realm, returning the moves
    /// `(realm, from, to)` needed. Intended to run at coarse (tens of
    /// seconds) intervals; the caller performs the actual (expensive)
    /// rebind via RMM teardown/re-entry.
    pub fn replan_compact(&mut self) -> Vec<(RealmId, CoreId, CoreId)> {
        let mut moves = Vec::new();
        let mut next = 0usize;
        let realms: Vec<RealmId> = self.allocations.keys().copied().collect();
        let mut new_free: Vec<CoreId> = self.pool.clone();
        for realm in realms {
            let cores = self.allocations.get_mut(&realm).expect("key just listed");
            for c in cores.iter_mut() {
                let target = self.pool[next];
                next += 1;
                if *c != target {
                    moves.push((realm, *c, target));
                    *c = target;
                }
            }
        }
        let used: Vec<CoreId> = self.pool[..next].to_vec();
        new_free.retain(|c| !used.contains(c));
        self.free = new_free;
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> CorePlanner {
        CorePlanner::new((1..9).map(CoreId)) // cores 1..=8
    }

    #[test]
    fn admit_prefers_contiguous() {
        let mut p = planner();
        let a = p.admit(RealmId(0), 4).unwrap();
        assert_eq!(a, (1..5).map(CoreId).collect::<Vec<_>>());
        let b = p.admit(RealmId(1), 4).unwrap();
        assert_eq!(b, (5..9).map(CoreId).collect::<Vec<_>>());
        assert_eq!(p.free_cores(), 0);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut p = planner();
        p.admit(RealmId(0), 6).unwrap();
        assert_eq!(
            p.admit(RealmId(1), 3),
            Err(PlannerError::InsufficientCores {
                requested: 3,
                available: 2
            })
        );
        // CPU is never overcommitted: admitted total ≤ pool.
        assert!(p.admit(RealmId(1), 2).is_ok());
    }

    #[test]
    fn double_admission_rejected() {
        let mut p = planner();
        p.admit(RealmId(0), 1).unwrap();
        assert_eq!(p.admit(RealmId(0), 1), Err(PlannerError::AlreadyAdmitted));
    }

    #[test]
    fn release_returns_cores() {
        let mut p = planner();
        p.admit(RealmId(0), 5).unwrap();
        let released = p.release(RealmId(0)).unwrap();
        assert_eq!(released.len(), 5);
        assert_eq!(p.free_cores(), 8);
        assert_eq!(p.release(RealmId(0)), Err(PlannerError::NotAdmitted));
    }

    #[test]
    fn fragmentation_detected_and_fixed_by_replan() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.admit(RealmId(2), 2).unwrap(); // 5,6
        p.release(RealmId(1)).unwrap(); // free: 3,4,7,8 (fragmented)
        assert!(p.fragmentation() > 0.0);
        let moves = p.replan_compact();
        // Realm 2 moves from 5,6 to 3,4; free becomes 5..8 contiguous.
        assert_eq!(moves.len(), 2);
        assert_eq!(p.fragmentation(), 0.0);
        assert_eq!(p.allocation(RealmId(2)).unwrap(), &[CoreId(3), CoreId(4)]);
    }

    #[test]
    fn scattered_allocation_when_no_contiguous_run() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.admit(RealmId(2), 2).unwrap(); // 5,6
        p.release(RealmId(0)).unwrap();
        p.release(RealmId(2)).unwrap(); // free: 1,2,5,6,7,8
                                        // Request 4: longest contiguous run is 5..8 (length 4).
        let a = p.admit(RealmId(3), 4).unwrap();
        assert_eq!(a, vec![CoreId(5), CoreId(6), CoreId(7), CoreId(8)]);
        // Request 3 more: only 1,2 free → insufficient.
        assert!(p.admit(RealmId(4), 3).is_err());
        let b = p.admit(RealmId(5), 2).unwrap();
        assert_eq!(b, vec![CoreId(1), CoreId(2)]);
    }

    #[test]
    fn zero_core_admission_is_trivial() {
        let mut p = planner();
        assert_eq!(p.admit(RealmId(0), 0).unwrap(), Vec::<CoreId>::new());
    }

    /// Regression: `fragmentation` must be total — finite (no NaN from
    /// a 0/0) and in [0, 1] — on an empty pool, on a fully allocated
    /// pool, and after a replan emptied nothing.
    #[test]
    fn fragmentation_is_total_on_degenerate_pools() {
        // Empty pool: no cores at all.
        let empty = CorePlanner::new(std::iter::empty());
        assert_eq!(empty.pool_size(), 0);
        assert!(empty.fragmentation().is_finite());
        assert_eq!(empty.fragmentation(), 0.0);

        // Fully allocated pool: free list drained to zero.
        let mut full = planner();
        full.admit(RealmId(0), 8).unwrap();
        assert_eq!(full.free_cores(), 0);
        assert!(full.fragmentation().is_finite());
        assert_eq!(full.fragmentation(), 0.0);

        // Single free core: longest run == free len == 1.
        let mut one = planner();
        one.admit(RealmId(0), 7).unwrap();
        assert_eq!(one.fragmentation(), 0.0);

        // Replanning a fully allocated pool is a no-op and stays total.
        assert!(full.replan_compact().is_empty());
        assert_eq!(full.fragmentation(), 0.0);
    }

    /// Regression: `release` after `replan_compact` must leave the free
    /// list in sorted order, so the next `admit` is deterministic — a
    /// replayed sequence picks the identical cores.
    #[test]
    fn release_after_replan_restores_deterministic_order() {
        let run = || {
            let mut p = planner();
            p.admit(RealmId(0), 2).unwrap(); // 1,2
            p.admit(RealmId(1), 2).unwrap(); // 3,4
            p.admit(RealmId(2), 2).unwrap(); // 5,6
            p.release(RealmId(1)).unwrap(); // free: 3,4,7,8
            p.replan_compact(); // realm 2 -> 3,4; free: 5,6,7,8
                                // Releasing post-replan cores must splice them back in
                                // sorted position, not append them at the tail.
            let released = p.release(RealmId(0)).unwrap();
            let next = p.admit(RealmId(3), 2).unwrap();
            // free: [5,6,7,8]; put 1,2 back and ask for 5 — no
            // contiguous run is long enough, forcing the scattered
            // fallback over the rebuilt free list.
            p.release(RealmId(3)).unwrap();
            let scattered = p.admit(RealmId(4), 5).unwrap();
            (released, next, scattered)
        };
        let (released, next, scattered) = run();
        assert_eq!(released, vec![CoreId(1), CoreId(2)]);
        // free was [1,2,5,6,7,8]; the first contiguous run of length
        // ≥ 2 starts at core 1 — reachable only if the list is sorted.
        assert_eq!(next, vec![CoreId(1), CoreId(2)]);
        // The fallback (scattered) path must also hand out cores in
        // ascending order off the sorted free list.
        assert_eq!(
            scattered,
            vec![CoreId(1), CoreId(2), CoreId(5), CoreId(6), CoreId(7)]
        );
        // Byte-identical on replay.
        assert_eq!((released, next, scattered), run());
    }
}
