//! The user-mode core planner (paper §3).
//!
//! Performs admission control on CVMs, assigns dedicated cores, and
//! orchestrates dedication/reclamation. It complements cluster-level VM
//! schedulers by making explicit, long-lived placement decisions inside a
//! node. The planner prefers contiguous core ranges to limit long-term
//! fragmentation, and supports coarse-grained replanning: the periodic
//! defragmentation pass reserves each move's target, performs the live
//! RMM rebind, and commits via [`CorePlanner::apply_move`] — so planner
//! state tracks reality move by move while VMs keep running.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cg_machine::{CoreId, RealmId};

/// Errors from admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerError {
    /// Not enough free cores to admit the CVM.
    InsufficientCores {
        /// Cores requested.
        requested: u16,
        /// Cores available.
        available: u16,
    },
    /// Enough free cores exist, but no contiguous run is long enough
    /// for a locality-strict admission. Defragmentation can fix this.
    NoContiguousRun {
        /// Cores requested (contiguously).
        requested: u16,
    },
    /// The realm already has an allocation.
    AlreadyAdmitted,
    /// The realm has no allocation.
    NotAdmitted,
    /// A relocation was invalid: the source core is not allocated to
    /// the realm, or the target core is not currently free.
    InvalidMove {
        /// Core the realm was supposed to vacate.
        from: CoreId,
        /// Core the realm was supposed to occupy.
        to: CoreId,
    },
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::InsufficientCores {
                requested,
                available,
            } => write!(
                f,
                "insufficient cores: requested {requested}, available {available}"
            ),
            PlannerError::NoContiguousRun { requested } => {
                write!(f, "no contiguous run of {requested} free cores")
            }
            PlannerError::AlreadyAdmitted => write!(f, "realm already admitted"),
            PlannerError::NotAdmitted => write!(f, "realm not admitted"),
            PlannerError::InvalidMove { from, to } => {
                write!(f, "invalid move: {from:?} -> {to:?}")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// The core planner.
///
/// # Example
///
/// ```
/// use cg_host::CorePlanner;
/// use cg_machine::{CoreId, RealmId};
///
/// let mut planner = CorePlanner::new((1..8).map(CoreId));
/// let cores = planner.admit(RealmId(0), 3).unwrap();
/// assert_eq!(cores.len(), 3);
/// assert_eq!(planner.free_cores(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct CorePlanner {
    /// Pool of cores the planner may dedicate (excludes host cores).
    pool: Vec<CoreId>,
    /// Allocations: realm → cores.
    allocations: BTreeMap<RealmId, Vec<CoreId>>,
    /// Cores currently free, kept sorted.
    free: Vec<CoreId>,
    /// Free cores set aside as in-flight relocation targets: nothing
    /// runs there yet, but admissions must not claim them — a pending
    /// defragmentation move is about to. Always a subset of `free`.
    reserved: BTreeSet<CoreId>,
}

impl CorePlanner {
    /// Creates a planner over the given dedicable core pool.
    pub fn new(pool: impl IntoIterator<Item = CoreId>) -> CorePlanner {
        let mut pool: Vec<CoreId> = pool.into_iter().collect();
        pool.sort();
        pool.dedup();
        CorePlanner {
            free: pool.clone(),
            pool,
            allocations: BTreeMap::new(),
            reserved: BTreeSet::new(),
        }
    }

    /// Number of free (dedicable, unallocated) cores.
    pub fn free_cores(&self) -> u16 {
        self.free.len() as u16
    }

    /// Total pool size.
    pub fn pool_size(&self) -> u16 {
        self.pool.len() as u16
    }

    /// The allocation of `realm`, if admitted.
    pub fn allocation(&self, realm: RealmId) -> Option<&[CoreId]> {
        self.allocations.get(&realm).map(|v| v.as_slice())
    }

    /// All admitted realms, in realm-id order.
    pub fn admitted_realms(&self) -> Vec<RealmId> {
        self.allocations.keys().copied().collect()
    }

    /// The currently free cores, sorted ascending. Includes reserved
    /// cores (they are free — nothing runs there — just invisible to
    /// admissions).
    pub fn free_list(&self) -> &[CoreId] {
        &self.free
    }

    /// The free cores an admission may actually claim: free minus
    /// reserved, sorted ascending.
    fn available(&self) -> Vec<CoreId> {
        self.free
            .iter()
            .copied()
            .filter(|c| !self.reserved.contains(c))
            .collect()
    }

    /// Reserves a free core as the target of an in-flight relocation:
    /// admissions will not claim it until [`CorePlanner::apply_move`]
    /// lands there (which clears the reservation) or
    /// [`CorePlanner::unreserve`] abandons it. Returns `false` (and
    /// reserves nothing) if the core is not currently free.
    pub fn reserve(&mut self, core: CoreId) -> bool {
        if self.free.binary_search(&core).is_err() {
            return false;
        }
        self.reserved.insert(core);
        true
    }

    /// Drops a reservation (an abandoned relocation). Idempotent.
    pub fn unreserve(&mut self, core: CoreId) {
        self.reserved.remove(&core);
    }

    /// The currently reserved relocation targets, sorted ascending.
    pub fn reserved_list(&self) -> Vec<CoreId> {
        self.reserved.iter().copied().collect()
    }

    /// Admits a CVM needing `num_cores` dedicated cores.
    ///
    /// Prefers the longest run of contiguous free cores (first-fit on
    /// contiguous runs, falling back to scattered cores) to keep future
    /// allocations compact. Reserved relocation targets are skipped.
    ///
    /// # Errors
    ///
    /// [`PlannerError::InsufficientCores`] or
    /// [`PlannerError::AlreadyAdmitted`].
    pub fn admit(&mut self, realm: RealmId, num_cores: u16) -> Result<Vec<CoreId>, PlannerError> {
        if self.allocations.contains_key(&realm) {
            return Err(PlannerError::AlreadyAdmitted);
        }
        let avail = self.available();
        if num_cores > avail.len() as u16 {
            return Err(PlannerError::InsufficientCores {
                requested: num_cores,
                available: avail.len() as u16,
            });
        }
        let chosen = Self::choose(&avail, num_cores as usize);
        self.free.retain(|c| !chosen.contains(c));
        self.allocations.insert(realm, chosen.clone());
        Ok(chosen)
    }

    /// Picks `n` cores from the sorted availability list: the first
    /// contiguous run of length ≥ n, else the first `n` cores.
    fn choose(avail: &[CoreId], n: usize) -> Vec<CoreId> {
        if n == 0 {
            return Vec::new();
        }
        let mut run_start = 0;
        for i in 1..=avail.len() {
            let contiguous = i < avail.len() && avail[i].0 == avail[i - 1].0 + 1;
            if !contiguous {
                if i - run_start >= n {
                    return avail[run_start..run_start + n].to_vec();
                }
                run_start = i;
            }
        }
        avail[..n].to_vec()
    }

    /// Releases `realm`'s cores back to the pool.
    ///
    /// # Errors
    ///
    /// [`PlannerError::NotAdmitted`].
    pub fn release(&mut self, realm: RealmId) -> Result<Vec<CoreId>, PlannerError> {
        let cores = self
            .allocations
            .remove(&realm)
            .ok_or(PlannerError::NotAdmitted)?;
        self.free.extend(cores.iter().copied());
        self.free.sort();
        Ok(cores)
    }

    /// Fragmentation metric: 1 − (longest contiguous free run / free
    /// cores). 0 means perfectly compact; approaching 1 means heavily
    /// fragmented.
    pub fn fragmentation(&self) -> f64 {
        if self.free.is_empty() {
            return 0.0;
        }
        let mut longest = 1usize;
        let mut current = 1usize;
        for i in 1..self.free.len() {
            if self.free[i].0 == self.free[i - 1].0 + 1 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 1;
            }
        }
        1.0 - longest as f64 / self.free.len() as f64
    }

    /// Grows `realm`'s allocation by `additional` cores (same placement
    /// policy as [`CorePlanner::admit`]). The new cores are appended to
    /// the existing allocation so established vCPU→core positions are
    /// undisturbed.
    ///
    /// # Errors
    ///
    /// [`PlannerError::NotAdmitted`] or
    /// [`PlannerError::InsufficientCores`].
    pub fn grow(&mut self, realm: RealmId, additional: u16) -> Result<Vec<CoreId>, PlannerError> {
        if !self.allocations.contains_key(&realm) {
            return Err(PlannerError::NotAdmitted);
        }
        let avail = self.available();
        if additional > avail.len() as u16 {
            return Err(PlannerError::InsufficientCores {
                requested: additional,
                available: avail.len() as u16,
            });
        }
        let chosen = Self::choose(&avail, additional as usize);
        self.free.retain(|c| !chosen.contains(c));
        self.allocations
            .get_mut(&realm)
            .expect("checked above")
            .extend(chosen.iter().copied());
        Ok(chosen)
    }

    /// Shrinks `realm`'s allocation by `remove` cores, releasing the
    /// tail of the allocation (the most recently granted / highest
    /// vCPU-index cores) back to the free pool. Returns the released
    /// cores. Shrinking to zero cores keeps the realm admitted.
    ///
    /// # Errors
    ///
    /// [`PlannerError::NotAdmitted`], or
    /// [`PlannerError::InsufficientCores`] when the allocation holds
    /// fewer than `remove` cores.
    pub fn shrink(&mut self, realm: RealmId, remove: u16) -> Result<Vec<CoreId>, PlannerError> {
        let cores = self
            .allocations
            .get_mut(&realm)
            .ok_or(PlannerError::NotAdmitted)?;
        if remove as usize > cores.len() {
            return Err(PlannerError::InsufficientCores {
                requested: remove,
                available: cores.len() as u16,
            });
        }
        let released = cores.split_off(cores.len() - remove as usize);
        self.free.extend(released.iter().copied());
        self.free.sort();
        Ok(released)
    }

    /// Admits a locality-strict CVM that only accepts a contiguous core
    /// range (NUMA/cluster-local tenants). Unlike [`CorePlanner::admit`]
    /// there is no scattered fallback: when the free cores suffice only
    /// in fragments the admission fails with
    /// [`PlannerError::NoContiguousRun`] — the caller may retry after a
    /// defragmentation pass.
    ///
    /// # Errors
    ///
    /// [`PlannerError::AlreadyAdmitted`],
    /// [`PlannerError::InsufficientCores`], or
    /// [`PlannerError::NoContiguousRun`].
    pub fn admit_contiguous(
        &mut self,
        realm: RealmId,
        num_cores: u16,
    ) -> Result<Vec<CoreId>, PlannerError> {
        if self.allocations.contains_key(&realm) {
            return Err(PlannerError::AlreadyAdmitted);
        }
        let avail = self.available();
        if num_cores > avail.len() as u16 {
            return Err(PlannerError::InsufficientCores {
                requested: num_cores,
                available: avail.len() as u16,
            });
        }
        if num_cores == 0 {
            self.allocations.insert(realm, Vec::new());
            return Ok(Vec::new());
        }
        let n = num_cores as usize;
        let mut run_start = 0usize;
        let mut found = None;
        for i in 1..=avail.len() {
            let contiguous = i < avail.len() && avail[i].0 == avail[i - 1].0 + 1;
            if !contiguous {
                if i - run_start >= n {
                    found = Some(avail[run_start..run_start + n].to_vec());
                    break;
                }
                run_start = i;
            }
        }
        let chosen = found.ok_or(PlannerError::NoContiguousRun {
            requested: num_cores,
        })?;
        self.free.retain(|c| !chosen.contains(c));
        self.allocations.insert(realm, chosen.clone());
        Ok(chosen)
    }

    /// Plans a compact placement without changing any state: every
    /// admitted realm is packed into the pool prefix (realm order), and
    /// the needed relocations are returned as `(realm, from, to)` moves
    /// **ordered so that each move's target core is free at the moment
    /// the move is applied**. Cycles (realm A's target is held by realm
    /// B and vice versa) are broken two-phase through a scratch core
    /// that is neither occupied nor anyone's final target; a pure
    /// rotation on a fully allocated pool has no scratch space — and no
    /// fragmentation to win back — so those moves are dropped.
    ///
    /// Applying the returned moves in order via
    /// [`CorePlanner::apply_move`] therefore never co-locates two
    /// realms, even transiently — the property live migration of
    /// dedicated cores depends on.
    pub fn plan_compact(&self) -> Vec<(RealmId, CoreId, CoreId)> {
        let mut next = 0usize;
        let mut pending: Vec<(RealmId, CoreId, CoreId)> = Vec::new();
        for (&realm, cores) in &self.allocations {
            for &c in cores {
                let target = self.pool[next];
                next += 1;
                if c != target {
                    pending.push((realm, c, target));
                }
            }
        }
        let mut occupied: BTreeSet<CoreId> = self.allocations.values().flatten().copied().collect();
        let final_targets: BTreeSet<CoreId> = pending.iter().map(|&(_, _, to)| to).collect();
        let mut ordered = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            if let Some(i) = pending
                .iter()
                .position(|&(_, _, to)| !occupied.contains(&to))
            {
                let (realm, from, to) = pending.remove(i);
                occupied.remove(&from);
                occupied.insert(to);
                ordered.push((realm, from, to));
                continue;
            }
            // Every remaining target is occupied: a cycle. Park the
            // first pending core on a scratch core, which frees its
            // source and unblocks the rest of the cycle; the parked
            // core finishes its journey once its real target clears.
            let scratch = self.pool.iter().copied().find(|c| {
                !occupied.contains(c) && !final_targets.contains(c) && !self.reserved.contains(c)
            });
            let Some(scratch) = scratch else {
                break; // pure rotation, nothing to gain: drop the cycle
            };
            let (realm, from, to) = pending.remove(0);
            occupied.remove(&from);
            occupied.insert(scratch);
            ordered.push((realm, from, scratch));
            pending.insert(0, (realm, scratch, to));
        }
        ordered
    }

    /// Commits one relocation: `realm` vacates `from` and occupies `to`.
    /// The target must be free *right now* — this is the collision
    /// contract [`CorePlanner::plan_compact`] orders its moves to
    /// satisfy, and it is what lets the caller interleave slow per-move
    /// rebinds (RMM teardown / re-entry) with new admissions without
    /// the planner's view drifting from reality.
    ///
    /// # Errors
    ///
    /// [`PlannerError::NotAdmitted`] or [`PlannerError::InvalidMove`].
    pub fn apply_move(
        &mut self,
        realm: RealmId,
        from: CoreId,
        to: CoreId,
    ) -> Result<(), PlannerError> {
        let free_idx = self
            .free
            .binary_search(&to)
            .map_err(|_| PlannerError::InvalidMove { from, to })?;
        let cores = self
            .allocations
            .get_mut(&realm)
            .ok_or(PlannerError::NotAdmitted)?;
        let slot = cores
            .iter()
            .position(|&c| c == from)
            .ok_or(PlannerError::InvalidMove { from, to })?;
        cores[slot] = to;
        self.free.remove(free_idx);
        self.reserved.remove(&to);
        let pos = self.free.binary_search(&from).unwrap_err();
        self.free.insert(pos, from);
        Ok(())
    }

    /// The paper's §3 replanning extension: computes a compact placement
    /// ([`CorePlanner::plan_compact`]) and commits every move, returning
    /// the collision-free-ordered move list. Intended to run at coarse
    /// (tens of seconds) intervals; callers that perform the actual
    /// (expensive) rebind via RMM teardown/re-entry should instead plan
    /// once and [`CorePlanner::apply_move`] each relocation as its
    /// rebind completes, so the planner tracks reality move by move.
    pub fn replan_compact(&mut self) -> Vec<(RealmId, CoreId, CoreId)> {
        let moves = self.plan_compact();
        for &(realm, from, to) in &moves {
            self.apply_move(realm, from, to)
                .expect("plan_compact moves are collision-free by construction");
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> CorePlanner {
        CorePlanner::new((1..9).map(CoreId)) // cores 1..=8
    }

    #[test]
    fn admit_prefers_contiguous() {
        let mut p = planner();
        let a = p.admit(RealmId(0), 4).unwrap();
        assert_eq!(a, (1..5).map(CoreId).collect::<Vec<_>>());
        let b = p.admit(RealmId(1), 4).unwrap();
        assert_eq!(b, (5..9).map(CoreId).collect::<Vec<_>>());
        assert_eq!(p.free_cores(), 0);
    }

    #[test]
    fn admission_control_rejects_oversubscription() {
        let mut p = planner();
        p.admit(RealmId(0), 6).unwrap();
        assert_eq!(
            p.admit(RealmId(1), 3),
            Err(PlannerError::InsufficientCores {
                requested: 3,
                available: 2
            })
        );
        // CPU is never overcommitted: admitted total ≤ pool.
        assert!(p.admit(RealmId(1), 2).is_ok());
    }

    #[test]
    fn double_admission_rejected() {
        let mut p = planner();
        p.admit(RealmId(0), 1).unwrap();
        assert_eq!(p.admit(RealmId(0), 1), Err(PlannerError::AlreadyAdmitted));
    }

    #[test]
    fn release_returns_cores() {
        let mut p = planner();
        p.admit(RealmId(0), 5).unwrap();
        let released = p.release(RealmId(0)).unwrap();
        assert_eq!(released.len(), 5);
        assert_eq!(p.free_cores(), 8);
        assert_eq!(p.release(RealmId(0)), Err(PlannerError::NotAdmitted));
    }

    #[test]
    fn fragmentation_detected_and_fixed_by_replan() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.admit(RealmId(2), 2).unwrap(); // 5,6
        p.release(RealmId(1)).unwrap(); // free: 3,4,7,8 (fragmented)
        assert!(p.fragmentation() > 0.0);
        let moves = p.replan_compact();
        // Realm 2 moves from 5,6 to 3,4; free becomes 5..8 contiguous.
        assert_eq!(moves.len(), 2);
        assert_eq!(p.fragmentation(), 0.0);
        assert_eq!(p.allocation(RealmId(2)).unwrap(), &[CoreId(3), CoreId(4)]);
    }

    #[test]
    fn scattered_allocation_when_no_contiguous_run() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.admit(RealmId(2), 2).unwrap(); // 5,6
        p.release(RealmId(0)).unwrap();
        p.release(RealmId(2)).unwrap(); // free: 1,2,5,6,7,8
                                        // Request 4: longest contiguous run is 5..8 (length 4).
        let a = p.admit(RealmId(3), 4).unwrap();
        assert_eq!(a, vec![CoreId(5), CoreId(6), CoreId(7), CoreId(8)]);
        // Request 3 more: only 1,2 free → insufficient.
        assert!(p.admit(RealmId(4), 3).is_err());
        let b = p.admit(RealmId(5), 2).unwrap();
        assert_eq!(b, vec![CoreId(1), CoreId(2)]);
    }

    #[test]
    fn zero_core_admission_is_trivial() {
        let mut p = planner();
        assert_eq!(p.admit(RealmId(0), 0).unwrap(), Vec::<CoreId>::new());
    }

    /// Regression: `fragmentation` must be total — finite (no NaN from
    /// a 0/0) and in [0, 1] — on an empty pool, on a fully allocated
    /// pool, and after a replan emptied nothing.
    #[test]
    fn fragmentation_is_total_on_degenerate_pools() {
        // Empty pool: no cores at all.
        let empty = CorePlanner::new(std::iter::empty());
        assert_eq!(empty.pool_size(), 0);
        assert!(empty.fragmentation().is_finite());
        assert_eq!(empty.fragmentation(), 0.0);

        // Fully allocated pool: free list drained to zero.
        let mut full = planner();
        full.admit(RealmId(0), 8).unwrap();
        assert_eq!(full.free_cores(), 0);
        assert!(full.fragmentation().is_finite());
        assert_eq!(full.fragmentation(), 0.0);

        // Single free core: longest run == free len == 1.
        let mut one = planner();
        one.admit(RealmId(0), 7).unwrap();
        assert_eq!(one.fragmentation(), 0.0);

        // Replanning a fully allocated pool is a no-op and stays total.
        assert!(full.replan_compact().is_empty());
        assert_eq!(full.fragmentation(), 0.0);
    }

    /// Regression: `replan_compact` used to emit moves in realm order,
    /// so an early move could target a core still occupied by a
    /// later-moving realm — transiently co-locating two realms on one
    /// dedicated core. The move list must be ordered so every target is
    /// free at apply time.
    #[test]
    fn replan_moves_are_ordered_collision_free() {
        let mut p = planner();
        // A *later* realm id sits on the pool prefix (the compact
        // target of the earlier id): realm-order emission would move
        // realm 1 onto cores realm 5 still occupies.
        p.admit(RealmId(5), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        let moves = p.plan_compact();
        assert!(!moves.is_empty());
        // Simulate sequential application: no move may ever target an
        // occupied core.
        let mut occupied: std::collections::BTreeSet<CoreId> = (1..5).map(CoreId).collect();
        for &(_, from, to) in &moves {
            assert!(!occupied.contains(&to), "move into occupied {to:?}");
            assert!(occupied.remove(&from));
            occupied.insert(to);
        }
        // And the real application agrees move by move.
        for &(realm, from, to) in &moves {
            p.apply_move(realm, from, to).unwrap();
        }
        assert_eq!(p.allocation(RealmId(1)).unwrap(), &[CoreId(1), CoreId(2)]);
        assert_eq!(p.allocation(RealmId(5)).unwrap(), &[CoreId(3), CoreId(4)]);
        assert_eq!(p.fragmentation(), 0.0);
    }

    /// A 2-cycle with scratch space is broken two-phase: park one core
    /// on a free scratch core, drain the cycle, then finish the parked
    /// core's journey.
    #[test]
    fn cycle_broken_two_phase_via_scratch_core() {
        let mut p = CorePlanner::new((1..4).map(CoreId)); // 1,2,3
        p.admit(RealmId(7), 1).unwrap(); // core 1
        p.admit(RealmId(2), 1).unwrap(); // core 2

        // Targets: realm 2 → core 1 (held by realm 7), realm 7 → core 2
        // (held by realm 2). Core 3 is the scratch.
        let moves = p.replan_compact();
        assert_eq!(moves.len(), 3, "park + two finishing moves");
        assert_eq!(p.allocation(RealmId(2)).unwrap(), &[CoreId(1)]);
        assert_eq!(p.allocation(RealmId(7)).unwrap(), &[CoreId(2)]);
        assert_eq!(p.free_cores(), 1);
        // Idempotent: a second replan has nothing left to do.
        assert!(p.replan_compact().is_empty());
    }

    /// A pure rotation on a fully allocated pool has no scratch core —
    /// and no fragmentation to win back — so the cycle is dropped
    /// rather than applied collision-unsafely.
    #[test]
    fn full_pool_rotation_is_dropped_not_collided() {
        let mut p = CorePlanner::new([CoreId(1), CoreId(2)]);
        p.admit(RealmId(9), 1).unwrap(); // core 1
        p.admit(RealmId(0), 1).unwrap(); // core 2
        assert!(p.plan_compact().is_empty());
        assert!(p.replan_compact().is_empty());
        assert_eq!(p.allocation(RealmId(9)).unwrap(), &[CoreId(1)]);
        assert_eq!(p.allocation(RealmId(0)).unwrap(), &[CoreId(2)]);
    }

    #[test]
    fn apply_move_rejects_occupied_target_and_foreign_source() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4

        // Target occupied by realm 1.
        assert_eq!(
            p.apply_move(RealmId(0), CoreId(1), CoreId(3)),
            Err(PlannerError::InvalidMove {
                from: CoreId(1),
                to: CoreId(3)
            })
        );
        // Source not allocated to realm 0.
        assert_eq!(
            p.apply_move(RealmId(0), CoreId(3), CoreId(5)),
            Err(PlannerError::InvalidMove {
                from: CoreId(3),
                to: CoreId(5)
            })
        );
        assert_eq!(
            p.apply_move(RealmId(2), CoreId(1), CoreId(5)),
            Err(PlannerError::NotAdmitted)
        );
        // A valid move commits and keeps the free list sorted.
        p.apply_move(RealmId(0), CoreId(2), CoreId(6)).unwrap();
        assert_eq!(p.allocation(RealmId(0)).unwrap(), &[CoreId(1), CoreId(6)]);
        let next = p.admit(RealmId(3), 1).unwrap();
        assert_eq!(next, vec![CoreId(2)], "freed core re-admitted in order");
    }

    #[test]
    fn grow_appends_and_shrink_releases_tail() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        assert_eq!(p.grow(RealmId(0), 2).unwrap(), vec![CoreId(3), CoreId(4)]);
        assert_eq!(
            p.allocation(RealmId(0)).unwrap(),
            &[CoreId(1), CoreId(2), CoreId(3), CoreId(4)]
        );
        assert_eq!(p.free_cores(), 4);
        // Shrink releases the tail (highest vCPU indices) back, sorted.
        assert_eq!(
            p.shrink(RealmId(0), 3).unwrap(),
            vec![CoreId(2), CoreId(3), CoreId(4)]
        );
        assert_eq!(p.allocation(RealmId(0)).unwrap(), &[CoreId(1)]);
        assert_eq!(p.free_cores(), 7);
        // Errors are typed and non-destructive.
        assert_eq!(p.grow(RealmId(1), 1), Err(PlannerError::NotAdmitted));
        assert_eq!(
            p.shrink(RealmId(0), 2),
            Err(PlannerError::InsufficientCores {
                requested: 2,
                available: 1
            })
        );
        assert_eq!(
            p.grow(RealmId(0), 9),
            Err(PlannerError::InsufficientCores {
                requested: 9,
                available: 7
            })
        );
    }

    #[test]
    fn contiguous_admission_fails_on_fragments_until_defrag() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.admit(RealmId(2), 2).unwrap(); // 5,6
        p.release(RealmId(1)).unwrap(); // free: 3,4,7,8 — fragmented
        assert_eq!(
            p.admit_contiguous(RealmId(3), 4),
            Err(PlannerError::NoContiguousRun { requested: 4 })
        );
        // Plain admit would have scattered; contiguous waits for defrag.
        p.replan_compact(); // realm 2 → 3,4; free: 5..8
        assert_eq!(
            p.admit_contiguous(RealmId(3), 4).unwrap(),
            (5..9).map(CoreId).collect::<Vec<_>>()
        );
        assert_eq!(
            p.admit_contiguous(RealmId(4), 1),
            Err(PlannerError::InsufficientCores {
                requested: 1,
                available: 0
            })
        );
    }

    /// Reserved relocation targets are invisible to admissions (plain,
    /// contiguous, and grow) until the move lands or is abandoned.
    #[test]
    fn reservations_shield_inflight_move_targets() {
        let mut p = planner();
        p.admit(RealmId(0), 2).unwrap(); // 1,2
        p.admit(RealmId(1), 2).unwrap(); // 3,4
        p.release(RealmId(0)).unwrap(); // free: 1,2,5..8
        assert!(p.reserve(CoreId(1)));
        assert!(p.reserve(CoreId(2)));
        assert!(!p.reserve(CoreId(3)), "allocated core cannot be reserved");
        assert_eq!(p.reserved_list(), vec![CoreId(1), CoreId(2)]);
        // Admissions skip the reserved pair even though it is free.
        assert_eq!(p.admit(RealmId(2), 2).unwrap(), vec![CoreId(5), CoreId(6)]);
        assert_eq!(
            p.admit_contiguous(RealmId(3), 4),
            Err(PlannerError::InsufficientCores {
                requested: 4,
                available: 2
            })
        );
        assert_eq!(
            p.grow(RealmId(2), 3),
            Err(PlannerError::InsufficientCores {
                requested: 3,
                available: 2
            })
        );
        // Landing the move clears its reservation; the other target is
        // abandoned explicitly. Both become admissible again.
        p.apply_move(RealmId(1), CoreId(3), CoreId(1)).unwrap();
        p.unreserve(CoreId(2));
        assert!(p.reserved_list().is_empty());
        assert_eq!(p.admit(RealmId(4), 2).unwrap(), vec![CoreId(2), CoreId(3)]);
    }

    /// Regression: `release` after `replan_compact` must leave the free
    /// list in sorted order, so the next `admit` is deterministic — a
    /// replayed sequence picks the identical cores.
    #[test]
    fn release_after_replan_restores_deterministic_order() {
        let run = || {
            let mut p = planner();
            p.admit(RealmId(0), 2).unwrap(); // 1,2
            p.admit(RealmId(1), 2).unwrap(); // 3,4
            p.admit(RealmId(2), 2).unwrap(); // 5,6
            p.release(RealmId(1)).unwrap(); // free: 3,4,7,8
            p.replan_compact(); // realm 2 -> 3,4; free: 5,6,7,8
                                // Releasing post-replan cores must splice them back in
                                // sorted position, not append them at the tail.
            let released = p.release(RealmId(0)).unwrap();
            let next = p.admit(RealmId(3), 2).unwrap();
            // free: [5,6,7,8]; put 1,2 back and ask for 5 — no
            // contiguous run is long enough, forcing the scattered
            // fallback over the rebuilt free list.
            p.release(RealmId(3)).unwrap();
            let scattered = p.admit(RealmId(4), 5).unwrap();
            (released, next, scattered)
        };
        let (released, next, scattered) = run();
        assert_eq!(released, vec![CoreId(1), CoreId(2)]);
        // free was [1,2,5,6,7,8]; the first contiguous run of length
        // ≥ 2 starts at core 1 — reachable only if the list is sorted.
        assert_eq!(next, vec![CoreId(1), CoreId(2)]);
        // The fallback (scattered) path must also hand out cores in
        // ascending order off the sorted free list.
        assert_eq!(
            scattered,
            vec![CoreId(1), CoreId(2), CoreId(5), CoreId(6), CoreId(7)]
        );
        // Byte-identical on replay.
        assert_eq!((released, next, scattered), run());
    }
}
