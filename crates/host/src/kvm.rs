//! The KVM layer: VM/vCPU state and exit handling policy.
//!
//! KVM's job in the simulation: own the vCPU threads' view of the VM,
//! translate each REC exit into host work and follow-up actions, emulate
//! the timer and IPIs when the RMM does not (delegation off), queue
//! virtual interrupts for the next run call, and decide when to kick a
//! running vCPU. The *transport* of run calls (same-core SMC vs cross-core
//! async RPC) is the system layer's concern.

use std::fmt;

use cg_cca::{RecEntry, RecExit, RecExitReason, RecId};
use cg_machine::{IntId, RealmId};
use cg_sim::{Counters, SimDuration, SimTime};

use crate::params::HostParams;
use crate::thread::ThreadId;
use crate::vmm::DeviceId;

/// How a VM executes (the experiment configurations of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmExecMode {
    /// Non-confidential shared-core VM: the paper's baseline. Exits are
    /// handled on the same core with no world switches.
    SharedCore,
    /// Confidential VM without core gapping: every exit pays world
    /// switches and mitigation flushes. (The comparison the paper could
    /// not run without RME hardware — our simulator can.)
    SharedCoreConfidential,
    /// The paper's contribution: vCPUs on dedicated cores, exits via
    /// cross-core RPC.
    CoreGapped,
}

impl VmExecMode {
    /// Returns `true` for the modes where the RMM mediates execution.
    pub fn is_confidential(self) -> bool {
        !matches!(self, VmExecMode::SharedCore)
    }
}

impl fmt::Display for VmExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmExecMode::SharedCore => "shared-core",
            VmExecMode::SharedCoreConfidential => "shared-core-cvm",
            VmExecMode::CoreGapped => "core-gapped",
        };
        f.write_str(s)
    }
}

/// Follow-up actions KVM requests from the system layer after handling
/// an exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostAction {
    /// Charge `cost` of host CPU work on the handling thread.
    Work {
        /// What the work is (for tracing/statistics).
        label: &'static str,
        /// CPU time to charge.
        cost: SimDuration,
    },
    /// Wake the VMM I/O thread for `device` (it has queued work).
    VmmKick {
        /// The device with pending queue work.
        device: DeviceId,
    },
    /// Arm the host-side emulated vtimer for `vcpu` (delegation off).
    ArmEmulTimer {
        /// Target vCPU index.
        vcpu: u32,
        /// Absolute expiry.
        deadline: SimTime,
    },
    /// Send the exit-request doorbell to a *running* vCPU so queued
    /// interrupts can be injected.
    KickVcpu {
        /// Target vCPU index.
        vcpu: u32,
    },
    /// Unblock the (WFI-blocked or idle) vCPU thread of `vcpu` and issue
    /// its next run call.
    UnblockVcpu {
        /// Target vCPU index.
        vcpu: u32,
    },
    /// Issue the next run call for this vCPU.
    Resume {
        /// Target vCPU index.
        vcpu: u32,
    },
    /// Block this vCPU thread (guest idle in WFI, shared-core mode).
    BlockVcpu {
        /// Target vCPU index.
        vcpu: u32,
    },
    /// Map a shared (unprotected) page at the faulting IPA via RMI calls.
    MapShared {
        /// Faulting guest-physical address.
        ipa: u64,
    },
    /// The vCPU finished; do not re-run it.
    VcpuFinished {
        /// Target vCPU index.
        vcpu: u32,
    },
}

/// The MMIO/hostcall routing table: which device a guest kick addresses.
#[derive(Debug, Clone, Default)]
pub struct DeviceMap {
    entries: Vec<(u32, DeviceId)>,
}

impl DeviceMap {
    /// Creates an empty map.
    pub fn new() -> DeviceMap {
        DeviceMap::default()
    }

    /// Routes hostcall immediate `imm` to `device`.
    pub fn route(&mut self, imm: u32, device: DeviceId) {
        self.entries.push((imm, device));
    }

    /// Looks up the device for `imm`.
    pub fn lookup(&self, imm: u32) -> Option<DeviceId> {
        self.entries
            .iter()
            .find(|(i, _)| *i == imm)
            .map(|(_, d)| *d)
    }
}

/// Per-vCPU host-side state.
#[derive(Debug)]
struct Vcpu {
    /// The KVM vCPU thread, once spawned.
    thread: Option<ThreadId>,
    /// Entry state accumulating for the next run call.
    entry: RecEntry,
    /// A run call is outstanding (the guest is executing or exiting).
    in_guest: bool,
    /// Thread is blocked in WFI (shared-core mode).
    wfi_blocked: bool,
    /// The vCPU shut down.
    finished: bool,
    /// Host-emulated virtual timer deadline (delegation off).
    emul_vtimer: Option<SimTime>,
    /// A kick doorbell is in flight to this vCPU.
    kick_inflight: bool,
}

impl Vcpu {
    fn new() -> Vcpu {
        Vcpu {
            thread: None,
            entry: RecEntry::default(),
            in_guest: false,
            wfi_blocked: false,
            finished: false,
            emul_vtimer: None,
            kick_inflight: false,
        }
    }
}

/// One VM as KVM sees it.
#[derive(Debug)]
pub struct KvmVm {
    realm: RealmId,
    mode: VmExecMode,
    vcpus: Vec<Vcpu>,
    devices: DeviceMap,
    counters: Counters,
}

impl KvmVm {
    /// Creates a VM with `num_vcpus` vCPUs.
    pub fn new(realm: RealmId, mode: VmExecMode, num_vcpus: u32) -> KvmVm {
        KvmVm {
            realm,
            mode,
            vcpus: (0..num_vcpus).map(|_| Vcpu::new()).collect(),
            devices: DeviceMap::new(),
            counters: Counters::new(),
        }
    }

    /// The realm identifier of this VM.
    pub fn realm(&self) -> RealmId {
        self.realm
    }

    /// The execution mode.
    pub fn mode(&self) -> VmExecMode {
        self.mode
    }

    /// Number of vCPUs.
    pub fn num_vcpus(&self) -> u32 {
        self.vcpus.len() as u32
    }

    /// The REC id of vCPU `vcpu`.
    pub fn rec(&self, vcpu: u32) -> RecId {
        RecId::new(self.realm, vcpu)
    }

    /// Exit statistics and emulation counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable device routing table.
    pub fn devices_mut(&mut self) -> &mut DeviceMap {
        &mut self.devices
    }

    /// Associates the spawned thread with vCPU `vcpu`.
    pub fn set_thread(&mut self, vcpu: u32, thread: ThreadId) {
        self.vcpus[vcpu as usize].thread = Some(thread);
    }

    /// The thread driving vCPU `vcpu`.
    pub fn thread(&self, vcpu: u32) -> Option<ThreadId> {
        self.vcpus[vcpu as usize].thread
    }

    /// Marks a run call issued for `vcpu`.
    pub fn mark_entered(&mut self, vcpu: u32) {
        let v = &mut self.vcpus[vcpu as usize];
        v.in_guest = true;
        v.kick_inflight = false;
    }

    /// Returns `true` if the vCPU still intends to block on WFI (a
    /// racing interrupt clears this; the system layer re-checks at the
    /// moment it would actually block the thread).
    pub fn wfi_should_block(&self, vcpu: u32) -> bool {
        self.vcpus[vcpu as usize].wfi_blocked
    }

    /// Returns `true` while a run call is outstanding.
    pub fn in_guest(&self, vcpu: u32) -> bool {
        self.vcpus[vcpu as usize].in_guest
    }

    /// Returns `true` once the vCPU has shut down.
    pub fn is_finished(&self, vcpu: u32) -> bool {
        self.vcpus[vcpu as usize].finished
    }

    /// Returns `true` if every vCPU has shut down.
    pub fn all_finished(&self) -> bool {
        self.vcpus.iter().all(|v| v.finished)
    }

    /// Takes the accumulated entry state for the next run call.
    pub fn take_entry(&mut self, vcpu: u32) -> RecEntry {
        std::mem::take(&mut self.vcpus[vcpu as usize].entry)
    }

    /// Forcibly marks `vcpu` finished without a guest `Shutdown` exit:
    /// the host is tearing the vCPU down (VM departure or scale-down
    /// under churn). Accumulated entry state and queued interrupts are
    /// dropped.
    pub fn force_finish(&mut self, vcpu: u32) {
        let v = &mut self.vcpus[vcpu as usize];
        v.finished = true;
        v.in_guest = false;
        v.wfi_blocked = false;
        v.kick_inflight = false;
        v.entry = RecEntry::default();
        self.counters.incr("kvm.force_finished");
    }

    /// Revives a vCPU previously retired via
    /// [`KvmVm::force_finish`] for a scale-up: clears the finished
    /// flag so run calls may be issued again. The caller re-dedicates
    /// a core and wakes the vCPU thread.
    pub fn revive(&mut self, vcpu: u32) {
        let v = &mut self.vcpus[vcpu as usize];
        v.finished = false;
        v.in_guest = false;
        v.wfi_blocked = false;
        v.kick_inflight = false;
        self.counters.incr("kvm.revived");
    }

    /// Queues a virtual interrupt for `vcpu`'s next entry; returns the
    /// action needed to get it delivered *now* (kick if in guest, unblock
    /// if WFI-blocked, nothing if the vCPU is between runs).
    pub fn queue_irq(&mut self, vcpu: u32, intid: IntId) -> Option<HostAction> {
        self.counters.incr("kvm.irq_queued");
        let v = &mut self.vcpus[vcpu as usize];
        if v.finished {
            return None;
        }
        if !v.entry.pending_interrupts.contains(&intid) {
            v.entry.pending_interrupts.push(intid);
        }
        if v.in_guest {
            if v.kick_inflight {
                None
            } else {
                v.kick_inflight = true;
                Some(HostAction::KickVcpu { vcpu })
            }
        } else if v.wfi_blocked {
            v.wfi_blocked = false;
            Some(HostAction::UnblockVcpu { vcpu })
        } else {
            None
        }
    }

    /// The host-emulated timer for `vcpu` fired: queue the virtual timer
    /// interrupt and deliver it.
    pub fn emul_timer_fire(&mut self, vcpu: u32, now: SimTime) -> Vec<HostAction> {
        let v = &mut self.vcpus[vcpu as usize];
        match v.emul_vtimer {
            Some(deadline) if deadline <= now => {
                v.emul_vtimer = None;
                self.counters.incr("kvm.emul_timer_fire");
                let mut actions = vec![HostAction::Work {
                    label: "timer-emulate-fire",
                    cost: SimDuration::nanos(600),
                }];
                actions.extend(self.queue_irq(vcpu, IntId::VTIMER));
                actions
            }
            _ => Vec::new(), // stale firing (reprogrammed meanwhile)
        }
    }

    /// Handles a REC exit for `vcpu`, returning the actions to perform.
    /// `params` provides the host work costs.
    ///
    /// # Panics
    ///
    /// Panics if no run call was outstanding for `vcpu`.
    pub fn handle_exit(
        &mut self,
        vcpu: u32,
        exit: &RecExit,
        params: &HostParams,
    ) -> Vec<HostAction> {
        assert!(
            self.vcpus[vcpu as usize].in_guest,
            "exit for vcpu {vcpu} without outstanding run call"
        );
        self.vcpus[vcpu as usize].in_guest = false;
        self.counters.incr(&format!("kvm.exit.{}", exit.reason));
        self.counters.incr("kvm.exit.total");
        if exit.reason.is_interrupt_related() {
            self.counters.incr("kvm.exit.interrupt_related");
        }
        let base = if self.mode.is_confidential() {
            // Confidential exits surface to the userspace run loop and
            // re-synchronise interrupt state with the monitor.
            // Interrupt-caused exits are re-entered from the kernel and
            // skip most of the userspace round.
            if exit.reason == RecExitReason::HostInterrupt {
                params.kvm_exit_fixed + params.cvm_exit_overhead / 2
            } else {
                params.kvm_exit_fixed + params.cvm_exit_overhead
            }
        } else {
            params.kvm_exit_fixed
        };
        let mut actions = vec![HostAction::Work {
            label: "kvm-exit",
            cost: base,
        }];
        match exit.reason {
            RecExitReason::Shutdown => {
                self.vcpus[vcpu as usize].finished = true;
                actions.push(HostAction::VcpuFinished { vcpu });
            }
            RecExitReason::Wfi => {
                // Before blocking, KVM re-checks for pending interrupts
                // (kvm_arch_vcpu_runnable): one may have been queued
                // while the exit was in flight.
                if self.vcpus[vcpu as usize]
                    .entry
                    .pending_interrupts
                    .is_empty()
                {
                    self.vcpus[vcpu as usize].wfi_blocked = true;
                    actions.push(HostAction::Work {
                        label: "wfi-block",
                        cost: params.wfi_block,
                    });
                    actions.push(HostAction::BlockVcpu { vcpu });
                } else {
                    actions.push(HostAction::Resume { vcpu });
                }
            }
            RecExitReason::HostInterrupt => {
                // The kick did its job: queued interrupts ride the next
                // entry. Just resume.
                actions.push(HostAction::Resume { vcpu });
            }
            RecExitReason::SysregTrap { sysreg } => {
                actions.extend(self.handle_sysreg_trap(vcpu, sysreg, exit, params));
            }
            RecExitReason::MmioRead { .. } => {
                // Device register read: full userspace round trip.
                actions.push(HostAction::Work {
                    label: "mmio-read",
                    cost: params.kvm_userspace_round,
                });
                self.vcpus[vcpu as usize].entry.mmio_read_value = Some(0);
                actions.push(HostAction::Resume { vcpu });
            }
            RecExitReason::MmioWrite { .. } => {
                actions.push(HostAction::Work {
                    label: "mmio-write",
                    cost: params.kvm_userspace_round,
                });
                actions.push(HostAction::Resume { vcpu });
            }
            RecExitReason::HostCall { imm } => {
                // Virtio kick: hand to the VMM I/O thread and resume the
                // guest immediately (the kick is asynchronous).
                actions.push(HostAction::Work {
                    label: "hostcall",
                    cost: params.kvm_userspace_round,
                });
                if let Some(device) = self.devices.lookup(imm) {
                    actions.push(HostAction::VmmKick { device });
                }
                actions.push(HostAction::Resume { vcpu });
            }
            RecExitReason::Stage2Fault { ipa } => {
                // On the CCA-style interface every page-table change is
                // a monitor call; TDX-style insecure tables skip that
                // (paper §6.1).
                let transport = if self.mode.is_confidential() && !params.tdx_style_tables {
                    params.fault_rmi_transport
                } else {
                    SimDuration::ZERO
                };
                actions.push(HostAction::Work {
                    label: "stage2-fixup",
                    cost: params.stage2_fixup + transport,
                });
                actions.push(HostAction::MapShared { ipa });
                actions.push(HostAction::Resume { vcpu });
            }
        }
        actions
    }

    fn handle_sysreg_trap(
        &mut self,
        vcpu: u32,
        sysreg: u32,
        exit: &RecExit,
        params: &HostParams,
    ) -> Vec<HostAction> {
        match sysreg {
            // CNTV_CVAL: guest programmed its virtual timer.
            0x0E03 => {
                let deadline = SimTime::from_nanos(exit.gprs[0]);
                self.vcpus[vcpu as usize].emul_vtimer = Some(deadline);
                self.counters.incr("kvm.emul_timer_program");
                vec![
                    HostAction::Work {
                        label: "timer-emulate",
                        cost: params.timer_emulate,
                    },
                    HostAction::ArmEmulTimer { vcpu, deadline },
                    HostAction::Resume { vcpu },
                ]
            }
            // ICC_SGI1R: guest sent an IPI.
            0x0C0B => {
                let target = exit.gprs[0] as u32;
                let sgi = exit.gprs[1] as u32;
                self.counters.incr("kvm.emul_ipi");
                let mut actions = vec![HostAction::Work {
                    label: "ipi-emulate",
                    cost: params.ipi_emulate,
                }];
                if (target as usize) < self.vcpus.len() {
                    actions.extend(self.queue_irq(target, IntId::sgi(sgi.min(15))));
                }
                actions.push(HostAction::Resume { vcpu });
                actions
            }
            _ => vec![
                HostAction::Work {
                    label: "sysreg-other",
                    cost: params.kvm_exit_fixed,
                },
                HostAction::Resume { vcpu },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> (KvmVm, HostParams) {
        (
            KvmVm::new(RealmId(0), VmExecMode::CoreGapped, 2),
            HostParams::calibrated(),
        )
    }

    fn exit(reason: RecExitReason) -> RecExit {
        RecExit::new(reason)
    }

    #[test]
    fn shutdown_finishes_vcpu() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        let actions = vm.handle_exit(0, &exit(RecExitReason::Shutdown), &p);
        assert!(actions.contains(&HostAction::VcpuFinished { vcpu: 0 }));
        assert!(vm.is_finished(0));
        assert!(!vm.all_finished());
        vm.mark_entered(1);
        vm.handle_exit(1, &exit(RecExitReason::Shutdown), &p);
        assert!(vm.all_finished());
    }

    #[test]
    fn wfi_blocks_vcpu_thread() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        let actions = vm.handle_exit(0, &exit(RecExitReason::Wfi), &p);
        assert!(actions.contains(&HostAction::BlockVcpu { vcpu: 0 }));
        // A queued interrupt unblocks it.
        let action = vm.queue_irq(0, IntId::VTIMER);
        assert_eq!(action, Some(HostAction::UnblockVcpu { vcpu: 0 }));
        // The entry list carries the interrupt.
        let entry = vm.take_entry(0);
        assert_eq!(entry.pending_interrupts, vec![IntId::VTIMER]);
    }

    #[test]
    fn timer_trap_arms_emulated_timer() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        let mut e = exit(RecExitReason::SysregTrap { sysreg: 0x0E03 });
        e.gprs[0] = 5_000_000;
        let actions = vm.handle_exit(0, &e, &p);
        assert!(actions.iter().any(|a| matches!(
            a,
            HostAction::ArmEmulTimer { vcpu: 0, deadline } if deadline.as_nanos() == 5_000_000
        )));
        assert!(actions.contains(&HostAction::Resume { vcpu: 0 }));
        // Firing queues the vtimer interrupt; the vCPU is between runs,
        // so no kick is needed — the next entry carries it.
        let fired = vm.emul_timer_fire(0, SimTime::from_nanos(5_000_000));
        assert!(!fired.is_empty());
        assert_eq!(vm.take_entry(0).pending_interrupts, vec![IntId::VTIMER]);
    }

    #[test]
    fn stale_timer_fire_is_ignored() {
        let (mut vm, _) = vm();
        assert!(vm.emul_timer_fire(0, SimTime::from_nanos(1)).is_empty());
    }

    #[test]
    fn ipi_trap_kicks_running_target() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        vm.mark_entered(1); // target is in guest
        let mut e = exit(RecExitReason::SysregTrap { sysreg: 0x0C0B });
        e.gprs[0] = 1; // target vcpu 1
        e.gprs[1] = 4; // SGI 4
        let actions = vm.handle_exit(0, &e, &p);
        assert!(actions.contains(&HostAction::KickVcpu { vcpu: 1 }));
        assert!(actions.contains(&HostAction::Resume { vcpu: 0 }));
        // Second queue while kick in flight does not duplicate the kick.
        assert_eq!(vm.queue_irq(1, IntId::sgi(5)), None);
    }

    #[test]
    fn hostcall_routes_to_device() {
        let (mut vm, p) = vm();
        vm.devices_mut().route(7, DeviceId(3));
        vm.mark_entered(0);
        let actions = vm.handle_exit(0, &exit(RecExitReason::HostCall { imm: 7 }), &p);
        assert!(actions.contains(&HostAction::VmmKick {
            device: DeviceId(3)
        }));
        assert!(actions.contains(&HostAction::Resume { vcpu: 0 }));
    }

    #[test]
    fn unknown_hostcall_still_resumes() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        let actions = vm.handle_exit(0, &exit(RecExitReason::HostCall { imm: 99 }), &p);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, HostAction::VmmKick { .. })));
        assert!(actions.contains(&HostAction::Resume { vcpu: 0 }));
    }

    #[test]
    fn stage2_fault_maps_and_resumes() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        let actions = vm.handle_exit(0, &exit(RecExitReason::Stage2Fault { ipa: 0x8000 }), &p);
        assert!(actions.contains(&HostAction::MapShared { ipa: 0x8000 }));
        assert!(actions.contains(&HostAction::Resume { vcpu: 0 }));
    }

    #[test]
    fn counters_track_interrupt_related_exits() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        vm.handle_exit(0, &exit(RecExitReason::Wfi), &p);
        vm.mark_entered(1);
        vm.handle_exit(1, &exit(RecExitReason::HostCall { imm: 0 }), &p);
        assert_eq!(vm.counters().get("kvm.exit.total"), 2);
        assert_eq!(vm.counters().get("kvm.exit.interrupt_related"), 1);
    }

    #[test]
    fn queue_irq_after_finish_is_dropped() {
        let (mut vm, p) = vm();
        vm.mark_entered(0);
        vm.handle_exit(0, &exit(RecExitReason::Shutdown), &p);
        assert_eq!(vm.queue_irq(0, IntId::VTIMER), None);
    }

    #[test]
    fn irq_queue_deduplicates() {
        let (mut vm, _) = vm();
        vm.queue_irq(0, IntId::spi(1));
        vm.queue_irq(0, IntId::spi(1));
        vm.queue_irq(0, IntId::spi(2));
        assert_eq!(
            vm.take_entry(0).pending_interrupts,
            vec![IntId::spi(1), IntId::spi(2)]
        );
    }
}
