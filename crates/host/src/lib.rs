//! # cg-host — the untrusted host software stack
//!
//! Models the Linux/KVM/kvmtool side of the paper's prototype (§4):
//!
//! * A host **kernel scheduler** with FIFO and fair classes and per-core
//!   run queues ([`sched`]). vCPU threads and the wake-up thread run at
//!   FIFO priority (fig. 4), VMM I/O threads in the fair class.
//! * **CPU hotplug** with the paper's modification: migrate work away,
//!   retarget interrupts, skip the frequency ramp-down, and hand the core
//!   to the RMM instead of powering it off ([`hotplug`]).
//! * A **KVM layer** that turns REC exits into emulation actions, host
//!   timer/IPI emulation (when delegation is off), stage-2 fault fixups,
//!   and resume decisions ([`kvm`]).
//! * A **VMM** (kvmtool-like) with virtio-net and virtio-blk backends and
//!   an SR-IOV VF passthrough path ([`vmm`]).
//! * The **wake-up thread** state machine that fields the single CVM-exit
//!   doorbell IPI and unblocks vCPU threads ([`wakeup`]).
//! * The user-mode **core planner** performing admission control and
//!   dedicated-core assignment for CVMs (§3, [`planner`]).
//! * The serving **front-end** gating tenant request traffic with
//!   token buckets, queue-depth caps, and backpressure, shedding the
//!   overload with typed reasons ([`frontend`]).
//!
//! Everything is a passive state machine driven by the system event loop
//! in `cg-core`; methods return actions and costs instead of scheduling
//! events themselves.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frontend;
pub mod hotplug;
pub mod iothread;
pub mod kvm;
pub mod params;
pub mod planner;
pub mod sched;
pub mod thread;
pub mod vmm;
pub mod wakeup;

pub use frontend::{AdmissionPolicy, FrontEnd, ShedReason, TenantGate, TokenBucket};
pub use iothread::IoThread;
pub use kvm::{HostAction, KvmVm, VmExecMode};
pub use params::HostParams;
pub use planner::{CorePlanner, PlannerError};
pub use sched::Scheduler;
pub use thread::{SchedClass, Thread, ThreadId, ThreadKind, ThreadState};
pub use vmm::{DeviceId, DeviceKind, DiskRequest, NetPacket, Vmm};
pub use wakeup::WakeupThread;
