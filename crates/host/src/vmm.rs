//! The userspace VMM (kvmtool-like): device models.
//!
//! Three device backends, matching the paper's evaluation setups:
//!
//! * **virtio-net**: every transmit kick exits to the host and is emulated
//!   by a VMM I/O thread; every receive raises a guest interrupt through
//!   KVM. This is the exit-intensive path of fig. 8's dashed lines.
//! * **virtio-blk**: request/completion through VMM emulation and a
//!   simulated disk (fig. 9, fig. 10).
//! * **SR-IOV VF**: descriptors flow directly between guest memory and the
//!   NIC with *no* VMM involvement; only the completion interrupt passes
//!   through the host (the prototype lacks direct interrupt delivery,
//!   §5.3).

use std::collections::VecDeque;
use std::fmt;

use cg_sim::SimDuration;

use crate::params::HostParams;

/// Identifies a device instance within one VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The kind of device behind a [`DeviceId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Emulated virtio network interface.
    VirtioNet,
    /// Emulated virtio block device.
    VirtioBlk,
    /// SR-IOV virtual function NIC (hardware passthrough).
    SriovNic,
}

/// A network packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPacket {
    /// Payload size in bytes (on-wire, including headers).
    pub bytes: u64,
    /// Opaque flow tag (used by workloads to match request/response).
    pub flow: u64,
}

/// A block I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// `true` for writes, `false` for reads.
    pub is_write: bool,
    /// Opaque tag for completion matching.
    pub tag: u64,
}

/// One device's queues and statistics.
#[derive(Debug)]
struct Device {
    kind: DeviceKind,
    /// Guest → device work queued by kicks, not yet emulated.
    tx_queue: VecDeque<NetPacket>,
    /// Outstanding disk requests.
    disk_queue: VecDeque<DiskRequest>,
    kicks: u64,
    interrupts: u64,
}

/// The VMM: device table and emulation cost accounting.
///
/// # Example
///
/// ```
/// use cg_host::{DeviceKind, HostParams, NetPacket, Vmm};
///
/// let params = HostParams::calibrated();
/// let mut vmm = Vmm::new();
/// let nic = vmm.add_device(DeviceKind::VirtioNet);
/// vmm.queue_tx(nic, NetPacket { bytes: 1500, flow: 1 });
/// let (pkt, cost) = vmm.emulate_tx(nic, &params).unwrap();
/// assert_eq!(pkt.bytes, 1500);
/// assert!(cost > cg_sim::SimDuration::ZERO);
/// ```
#[derive(Debug, Default)]
pub struct Vmm {
    devices: Vec<Device>,
}

impl Vmm {
    /// Creates a VMM with no devices.
    pub fn new() -> Vmm {
        Vmm::default()
    }

    /// Registers a device, returning its id.
    pub fn add_device(&mut self, kind: DeviceKind) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            kind,
            tx_queue: VecDeque::new(),
            disk_queue: VecDeque::new(),
            kicks: 0,
            interrupts: 0,
        });
        id
    }

    fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0 as usize]
    }

    /// The kind of device `id`.
    pub fn kind(&self, id: DeviceId) -> DeviceKind {
        self.device(id).kind
    }

    /// All devices of a given kind.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> Vec<DeviceId> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == kind)
            .map(|(i, _)| DeviceId(i as u32))
            .collect()
    }

    /// Guest queued a transmit packet and kicked the device
    /// (virtio-net).
    pub fn queue_tx(&mut self, id: DeviceId, pkt: NetPacket) {
        let d = self.device_mut(id);
        d.kicks += 1;
        d.tx_queue.push_back(pkt);
    }

    /// VMM I/O thread emulates one queued transmit, returning the packet
    /// to put on the wire and the emulation cost.
    pub fn emulate_tx(
        &mut self,
        id: DeviceId,
        params: &HostParams,
    ) -> Option<(NetPacket, SimDuration)> {
        let d = self.device_mut(id);
        let pkt = d.tx_queue.pop_front()?;
        Some((
            pkt,
            params.virtio_net_kick + params.virtio_net_packet_cost(pkt.bytes),
        ))
    }

    /// Pending transmit queue depth.
    pub fn tx_pending(&self, id: DeviceId) -> usize {
        self.device(id).tx_queue.len()
    }

    /// VMM receives a packet from the wire for an emulated NIC; returns
    /// the emulation cost before the guest interrupt can be raised.
    pub fn emulate_rx(&mut self, id: DeviceId, pkt: NetPacket, params: &HostParams) -> SimDuration {
        let d = self.device_mut(id);
        d.interrupts += 1;
        params.virtio_net_packet_cost(pkt.bytes)
    }

    /// Guest queued a disk request and kicked the device (virtio-blk).
    pub fn queue_disk(&mut self, id: DeviceId, req: DiskRequest) {
        let d = self.device_mut(id);
        d.kicks += 1;
        d.disk_queue.push_back(req);
    }

    /// VMM I/O thread emulates one disk request: returns the request, the
    /// VMM CPU cost, and the device-side service time (latency +
    /// transfer).
    pub fn emulate_disk(
        &mut self,
        id: DeviceId,
        params: &HostParams,
    ) -> Option<(DiskRequest, SimDuration, SimDuration)> {
        let d = self.device_mut(id);
        let req = d.disk_queue.pop_front()?;
        let cpu = params.virtio_blk_request_cost(req.bytes);
        let service = params.disk_latency + params.disk_transfer(req.bytes);
        Some((req, cpu, service))
    }

    /// Records a completion interrupt raised toward the guest.
    pub fn count_interrupt(&mut self, id: DeviceId) {
        self.device_mut(id).interrupts += 1;
    }

    /// Total kicks received by `id`.
    pub fn kicks(&self, id: DeviceId) -> u64 {
        self.device(id).kicks
    }

    /// Total guest interrupts raised by `id`.
    pub fn interrupts(&self, id: DeviceId) -> u64 {
        self.device(id).interrupts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vmm, HostParams) {
        (Vmm::new(), HostParams::calibrated())
    }

    #[test]
    fn tx_queue_fifo_order() {
        let (mut vmm, p) = setup();
        let nic = vmm.add_device(DeviceKind::VirtioNet);
        vmm.queue_tx(
            nic,
            NetPacket {
                bytes: 100,
                flow: 1,
            },
        );
        vmm.queue_tx(
            nic,
            NetPacket {
                bytes: 200,
                flow: 2,
            },
        );
        assert_eq!(vmm.tx_pending(nic), 2);
        let (p1, _) = vmm.emulate_tx(nic, &p).unwrap();
        let (p2, _) = vmm.emulate_tx(nic, &p).unwrap();
        assert_eq!((p1.flow, p2.flow), (1, 2));
        assert!(vmm.emulate_tx(nic, &p).is_none());
        assert_eq!(vmm.kicks(nic), 2);
    }

    #[test]
    fn bigger_packets_cost_more() {
        let (mut vmm, p) = setup();
        let nic = vmm.add_device(DeviceKind::VirtioNet);
        vmm.queue_tx(nic, NetPacket { bytes: 64, flow: 0 });
        vmm.queue_tx(
            nic,
            NetPacket {
                bytes: 65536,
                flow: 0,
            },
        );
        let (_, c1) = vmm.emulate_tx(nic, &p).unwrap();
        let (_, c2) = vmm.emulate_tx(nic, &p).unwrap();
        assert!(c2 > c1);
    }

    #[test]
    fn disk_emulation_returns_cpu_and_service_time() {
        let (mut vmm, p) = setup();
        let blk = vmm.add_device(DeviceKind::VirtioBlk);
        vmm.queue_disk(
            blk,
            DiskRequest {
                bytes: 4096,
                is_write: false,
                tag: 7,
            },
        );
        let (req, cpu, service) = vmm.emulate_disk(blk, &p).unwrap();
        assert_eq!(req.tag, 7);
        assert!(cpu >= p.virtio_blk_request);
        assert!(service >= p.disk_latency);
    }

    #[test]
    fn rx_counts_interrupts() {
        let (mut vmm, p) = setup();
        let nic = vmm.add_device(DeviceKind::VirtioNet);
        vmm.emulate_rx(
            nic,
            NetPacket {
                bytes: 1500,
                flow: 0,
            },
            &p,
        );
        vmm.count_interrupt(nic);
        assert_eq!(vmm.interrupts(nic), 2);
    }

    #[test]
    fn device_kind_lookup() {
        let (mut vmm, _) = setup();
        let nic = vmm.add_device(DeviceKind::VirtioNet);
        let blk = vmm.add_device(DeviceKind::VirtioBlk);
        let vf = vmm.add_device(DeviceKind::SriovNic);
        assert_eq!(vmm.kind(nic), DeviceKind::VirtioNet);
        assert_eq!(vmm.kind(blk), DeviceKind::VirtioBlk);
        assert_eq!(vmm.devices_of_kind(DeviceKind::SriovNic), vec![vf]);
    }
}
