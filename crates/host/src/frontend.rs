//! The serving front-end: per-tenant admission control for the fleet
//! plane.
//!
//! A node that serves external traffic runs one front-end alongside the
//! VMM: it terminates tenant requests, decides per tenant whether each
//! may enter (token-bucket rate limit + queue-depth cap + ring
//! backpressure), and sheds the rest with a typed reason instead of
//! letting an overload collapse the guests' virtqueues. Like every
//! other host component, it is a passive state machine: `cg-core`'s
//! fleet driver calls it at each arrival and completion and schedules
//! the implied events itself.

use cg_sim::{SimDuration, SimTime};

/// Why the front-end refused a request admission.
///
/// Every rejection is attributed to exactly one reason so the shed
/// accounting closes: `admitted + shed + in-flight == offered`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// The tenant's token bucket was empty (sustained rate above its
    /// contracted admission rate).
    RateLimited,
    /// The tenant already has its maximum number of requests queued or
    /// in service (queue-depth cap).
    QueueFull,
    /// The node's delivery rings are too full: backpressure from ring
    /// occupancy closed the gate for all tenants on the node.
    Backpressure,
    /// The front-end itself was stalled (injected fault or host
    /// interference) and dropped the request on the floor.
    FrontendStalled,
    /// The tenant's CVM is not currently able to serve (paused,
    /// migrating, or not yet admitted to any node).
    TenantUnavailable,
}

impl ShedReason {
    /// Every reason, in counter order.
    pub const ALL: [ShedReason; 5] = [
        ShedReason::RateLimited,
        ShedReason::QueueFull,
        ShedReason::Backpressure,
        ShedReason::FrontendStalled,
        ShedReason::TenantUnavailable,
    ];

    /// Short human-readable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::Backpressure => "backpressure",
            ShedReason::FrontendStalled => "stalled",
            ShedReason::TenantUnavailable => "unavailable",
        }
    }

    /// The metrics counter name this reason increments.
    pub fn counter_name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "fleet.shed.rate_limited",
            ShedReason::QueueFull => "fleet.shed.queue_full",
            ShedReason::Backpressure => "fleet.shed.backpressure",
            ShedReason::FrontendStalled => "fleet.shed.frontend_stalled",
            ShedReason::TenantUnavailable => "fleet.shed.tenant_unavailable",
        }
    }
}

/// A deterministic token bucket: `rate` tokens per second, holding at
/// most `burst`.
///
/// Refill is computed lazily from elapsed simulated time, so the
/// bucket never needs its own timer events and two same-seed runs see
/// byte-identical token states.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained admission rate in tokens per second.
    rate: f64,
    /// Bucket capacity (maximum burst).
    burst: f64,
    /// Tokens currently available.
    tokens: f64,
    /// Last refill instant.
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate` per second with capacity `burst`,
    /// starting full.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            rate: rate.max(0.0),
            burst: burst.max(0.0),
            tokens: burst.max(0.0),
            last: SimTime::ZERO,
        }
    }

    /// Tokens available at `now` (after lazy refill).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Takes one token if available. Returns `false` (and takes
    /// nothing) when the bucket is empty.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = now.duration_since(self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last = now;
        }
    }
}

/// Per-tenant admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Sustained admission rate (requests per second).
    pub rate_per_sec: f64,
    /// Burst allowance (token-bucket capacity).
    pub burst: f64,
    /// Maximum requests queued or in service for the tenant at once.
    pub queue_cap: u32,
}

impl AdmissionPolicy {
    /// A policy admitting `rate_per_sec` with a burst of a quarter
    /// second's worth of traffic and a queue cap of `queue_cap`.
    pub fn per_second(rate_per_sec: f64, queue_cap: u32) -> AdmissionPolicy {
        AdmissionPolicy {
            rate_per_sec,
            burst: (rate_per_sec / 4.0).max(4.0),
            queue_cap,
        }
    }
}

/// The admission gate for one tenant on one node's front-end.
///
/// Tracks the tenant's token bucket and in-flight count and attributes
/// every rejection to a [`ShedReason`].
#[derive(Debug, Clone)]
pub struct TenantGate {
    policy: AdmissionPolicy,
    bucket: TokenBucket,
    in_flight: u32,
    admitted: u64,
    shed: [u64; ShedReason::ALL.len()],
}

impl TenantGate {
    /// A gate enforcing `policy`.
    pub fn new(policy: AdmissionPolicy) -> TenantGate {
        TenantGate {
            bucket: TokenBucket::new(policy.rate_per_sec, policy.burst),
            policy,
            in_flight: 0,
            admitted: 0,
            shed: [0; ShedReason::ALL.len()],
        }
    }

    /// Decides admission for one request arriving at `now`.
    ///
    /// `backpressured` reflects node-level ring occupancy (closes the
    /// gate regardless of per-tenant budget); `available` is whether
    /// the tenant CVM can currently serve at all.
    ///
    /// # Errors
    ///
    /// Returns the [`ShedReason`] attributed to a refused request (and
    /// counts it).
    pub fn try_admit(
        &mut self,
        now: SimTime,
        backpressured: bool,
        available: bool,
    ) -> Result<(), ShedReason> {
        if !available {
            return Err(self.shed(ShedReason::TenantUnavailable));
        }
        if backpressured {
            return Err(self.shed(ShedReason::Backpressure));
        }
        if self.in_flight >= self.policy.queue_cap {
            return Err(self.shed(ShedReason::QueueFull));
        }
        if !self.bucket.try_take(now) {
            return Err(self.shed(ShedReason::RateLimited));
        }
        self.in_flight += 1;
        self.admitted += 1;
        Ok(())
    }

    /// Records a request dropped because the front-end itself stalled
    /// (the request never reached the admission decision).
    pub fn drop_stalled(&mut self) -> ShedReason {
        self.shed(ShedReason::FrontendStalled)
    }

    fn shed(&mut self, reason: ShedReason) -> ShedReason {
        let idx = ShedReason::ALL.iter().position(|r| *r == reason).unwrap();
        self.shed[idx] += 1;
        reason
    }

    /// A previously admitted request completed (or was abandoned):
    /// frees its queue slot.
    pub fn complete(&mut self) {
        debug_assert!(self.in_flight > 0, "completion without admission");
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Requests currently admitted but not yet completed.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed for `reason` so far.
    pub fn shed_count(&self, reason: ShedReason) -> u64 {
        let idx = ShedReason::ALL.iter().position(|r| *r == reason).unwrap();
        self.shed[idx]
    }

    /// Requests shed across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// The policy this gate enforces.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Replaces the policy (e.g. after an elastic resize changed the
    /// tenant's contracted rate), keeping the current bucket level
    /// clamped to the new burst.
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        let level = self.bucket.tokens.min(policy.burst);
        let last = self.bucket.last;
        self.bucket = TokenBucket::new(policy.rate_per_sec, policy.burst);
        self.bucket.tokens = level;
        self.bucket.last = last;
        self.policy = policy;
    }
}

/// Node-level front-end bookkeeping: one per serving node, owning a
/// [`TenantGate`] per tenant hosted there plus the node-wide
/// backpressure threshold.
#[derive(Debug)]
pub struct FrontEnd {
    gates: Vec<TenantGate>,
    /// Close all gates while node ring occupancy is at or above this
    /// many outstanding requests.
    backpressure_cap: u32,
    /// Cost charged to the host core per admission decision.
    admit_cost: SimDuration,
    /// Injected stall the front-end is serving out (requests arriving
    /// before this instant are dropped as [`ShedReason::FrontendStalled`]).
    stalled_until: SimTime,
}

impl FrontEnd {
    /// A front-end with one gate per entry of `policies`, applying
    /// node-wide backpressure at `backpressure_cap` outstanding
    /// requests.
    pub fn new(policies: &[AdmissionPolicy], backpressure_cap: u32) -> FrontEnd {
        FrontEnd {
            gates: policies.iter().map(|p| TenantGate::new(*p)).collect(),
            backpressure_cap,
            admit_cost: SimDuration::nanos(400),
            stalled_until: SimTime::ZERO,
        }
    }

    /// Number of tenant gates.
    pub fn num_tenants(&self) -> usize {
        self.gates.len()
    }

    /// Immutable access to tenant `t`'s gate.
    pub fn gate(&self, t: usize) -> &TenantGate {
        &self.gates[t]
    }

    /// Mutable access to tenant `t`'s gate.
    pub fn gate_mut(&mut self, t: usize) -> &mut TenantGate {
        &mut self.gates[t]
    }

    /// Outstanding admitted requests across every tenant on the node.
    pub fn node_in_flight(&self) -> u32 {
        self.gates.iter().map(|g| g.in_flight()).sum()
    }

    /// Whether node-level backpressure is currently closing the gates.
    pub fn backpressured(&self) -> bool {
        self.node_in_flight() >= self.backpressure_cap
    }

    /// The per-decision host-core cost of running the admission path.
    pub fn admit_cost(&self) -> SimDuration {
        self.admit_cost
    }

    /// Begins an injected front-end stall lasting `len` from `now`.
    pub fn stall(&mut self, now: SimTime, len: SimDuration) {
        self.stalled_until = self.stalled_until.max(now + len);
    }

    /// Whether the front-end is stalled at `now`.
    pub fn is_stalled(&self, now: SimTime) -> bool {
        now < self.stalled_until
    }

    /// Decides admission for one request for tenant `t` at `now`,
    /// applying the stall window, node backpressure, and the tenant
    /// gate in that order.
    ///
    /// # Errors
    ///
    /// Returns the attributed [`ShedReason`] when the request is shed.
    pub fn admit(&mut self, t: usize, now: SimTime, available: bool) -> Result<(), ShedReason> {
        if self.is_stalled(now) {
            return Err(self.gates[t].drop_stalled());
        }
        let bp = self.backpressured();
        self.gates[t].try_admit(now, bp, available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(rate: f64, cap: u32) -> AdmissionPolicy {
        AdmissionPolicy {
            rate_per_sec: rate,
            burst: 4.0,
            queue_cap: cap,
        }
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(SimTime::ZERO));
        assert!(b.try_take(SimTime::ZERO));
        assert!(!b.try_take(SimTime::ZERO), "burst exhausted");
        // 1 ms at 1000/s refills one token.
        let later = SimTime::from_nanos(1_000_000);
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        let much_later = SimTime::from_nanos(5_000_000_000);
        assert!((b.available(much_later) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_rate_limits_and_counts() {
        let mut g = TenantGate::new(policy(1000.0, 100));
        for _ in 0..4 {
            assert!(g.try_admit(SimTime::ZERO, false, true).is_ok());
        }
        assert_eq!(
            g.try_admit(SimTime::ZERO, false, true),
            Err(ShedReason::RateLimited)
        );
        assert_eq!(g.admitted(), 4);
        assert_eq!(g.shed_count(ShedReason::RateLimited), 1);
        assert_eq!(g.shed_total(), 1);
        assert_eq!(g.in_flight(), 4);
    }

    #[test]
    fn gate_enforces_queue_cap_and_frees_on_complete() {
        let mut g = TenantGate::new(policy(1e9, 2));
        assert!(g.try_admit(SimTime::ZERO, false, true).is_ok());
        assert!(g.try_admit(SimTime::ZERO, false, true).is_ok());
        assert_eq!(
            g.try_admit(SimTime::ZERO, false, true),
            Err(ShedReason::QueueFull)
        );
        g.complete();
        assert!(g.try_admit(SimTime::ZERO, false, true).is_ok());
    }

    #[test]
    fn shed_reasons_attributed_in_priority_order() {
        let mut g = TenantGate::new(policy(1e9, 1));
        assert_eq!(
            g.try_admit(SimTime::ZERO, true, false),
            Err(ShedReason::TenantUnavailable),
            "unavailability outranks backpressure"
        );
        assert_eq!(
            g.try_admit(SimTime::ZERO, true, true),
            Err(ShedReason::Backpressure)
        );
        assert_eq!(g.shed_total(), 2);
    }

    #[test]
    fn frontend_backpressure_closes_all_gates() {
        let mut fe = FrontEnd::new(&[policy(1e9, 10), policy(1e9, 10)], 3);
        assert!(fe.admit(0, SimTime::ZERO, true).is_ok());
        assert!(fe.admit(0, SimTime::ZERO, true).is_ok());
        assert!(fe.admit(1, SimTime::ZERO, true).is_ok());
        assert!(fe.backpressured());
        assert_eq!(
            fe.admit(1, SimTime::ZERO, true),
            Err(ShedReason::Backpressure)
        );
        fe.gate_mut(0).complete();
        assert!(fe.admit(1, SimTime::ZERO, true).is_ok());
    }

    #[test]
    fn frontend_stall_drops_requests_until_expiry() {
        let mut fe = FrontEnd::new(&[policy(1e9, 10)], 100);
        fe.stall(SimTime::ZERO, SimDuration::micros(10));
        assert_eq!(
            fe.admit(0, SimTime::from_nanos(5_000), true),
            Err(ShedReason::FrontendStalled)
        );
        assert!(fe.admit(0, SimTime::from_nanos(10_000), true).is_ok());
        assert_eq!(fe.gate(0).shed_count(ShedReason::FrontendStalled), 1);
    }

    #[test]
    fn policy_swap_keeps_bucket_level() {
        let mut g = TenantGate::new(policy(1000.0, 100));
        assert!(g.try_admit(SimTime::ZERO, false, true).is_ok());
        g.set_policy(AdmissionPolicy {
            rate_per_sec: 2000.0,
            burst: 2.0,
            queue_cap: 100,
        });
        // 3 tokens remained but the new burst clamps to 2.
        let mut avail = g.bucket.clone();
        assert!((avail.available(SimTime::ZERO) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn accounting_identity_holds() {
        let mut g = TenantGate::new(policy(1000.0, 2));
        let mut offered = 0u64;
        for i in 0..50u64 {
            offered += 1;
            let t = SimTime::from_nanos(i * 100_000);
            let _ = g.try_admit(t, i % 7 == 0, i % 11 != 0);
            if i % 3 == 0 && g.in_flight() > 0 {
                g.complete();
            }
        }
        assert_eq!(
            g.admitted() + g.shed_total(),
            offered,
            "every offered request is admitted or shed"
        );
    }
}
