//! The dedicated I/O completion plane.
//!
//! The fast-path analogue of the wake-up thread
//! ([`crate::wakeup::WakeupThread`]): one FIFO-priority host thread
//! services the shared-memory virtqueues of every fast-path device.
//! A guest kick rings the I/O doorbell instead of exiting; the handler
//! activates this thread, which polls every avail ring, drives the
//! device backends, posts completions, and — finding nothing new after
//! re-arming kick notifications — suspends until the next doorbell.
//!
//! It shares the wake-up thread's two correctness obligations and
//! resolves them the same way:
//!
//! * **Lost-wakeup race** — a doorbell ringing mid-poll sets
//!   `repoll_requested`, which [`IoThread::try_suspend`] consumes by
//!   refusing to suspend, forcing one more poll.
//! * **Lost-doorbell hole** — a dropped IPI (or dropped completion
//!   interrupt) strands work forever; the same periodic watchdog that
//!   rescans run channels also rescans the avail rings and stranded
//!   used entries, re-activating this thread via
//!   [`IoThread::on_watchdog`].

use cg_sim::{SimDuration, TraceHandle, TraceKind};

use crate::thread::ThreadId;

/// I/O-plane thread state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Suspended, kick notifications armed, waiting for the I/O
    /// doorbell IPI.
    Suspended,
    /// Activated (IPI taken), waiting for CPU or polling.
    Active,
}

/// Bookkeeping for the I/O completion-plane thread.
///
/// The thread itself is a scheduler entity; this struct tracks its
/// activation state, mirroring [`crate::wakeup::WakeupThread`].
#[derive(Debug)]
pub struct IoThread {
    thread: ThreadId,
    state: State,
    /// A doorbell rang while a poll was in progress: poll again before
    /// suspending (closes the lost-wakeup race).
    repoll_requested: bool,
    activations: u64,
    descriptors_serviced: u64,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
}

impl IoThread {
    /// Creates the bookkeeping for I/O-plane thread `thread`.
    pub fn new(thread: ThreadId) -> IoThread {
        IoThread {
            thread,
            state: State::Suspended,
            repoll_requested: false,
            activations: 0,
            descriptors_serviced: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a structured trace; activation/suspension decisions are
    /// recorded through it from then on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The scheduler thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The I/O doorbell IPI arrived. Returns `true` if the thread was
    /// suspended and must now be woken (scheduled); `false` if it is
    /// already active (the notification coalesces into the in-flight
    /// poll).
    pub fn on_doorbell(&mut self) -> bool {
        let must_wake = match self.state {
            State::Suspended => {
                self.state = State::Active;
                self.activations += 1;
                true
            }
            State::Active => {
                self.repoll_requested = true;
                false
            }
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "io.doorbell {}",
                if must_wake {
                    "activates"
                } else {
                    "coalesced -> repoll"
                }
            )
        });
        must_wake
    }

    /// Returns `true` while activated.
    pub fn is_active(&self) -> bool {
        self.state == State::Active
    }

    /// A poll pass serviced `count` descriptors.
    pub fn record_serviced(&mut self, count: u64) {
        self.descriptors_serviced += count;
    }

    /// Attempts to suspend after an empty poll. Returns `false`
    /// (staying active) if a doorbell rang during the poll — the caller
    /// must poll again; `true` if the thread is now suspended (the
    /// caller must have re-armed kick notifications *before* the final
    /// empty poll, or submissions landing in the gap neither kick nor
    /// get polled).
    pub fn try_suspend(&mut self) -> bool {
        let suspended = if std::mem::replace(&mut self.repoll_requested, false) {
            false
        } else {
            self.state = State::Suspended;
            true
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "io.try_suspend {}",
                if suspended {
                    "suspended"
                } else {
                    "repoll pending"
                }
            )
        });
        suspended
    }

    /// The periodic watchdog found published avail entries (or stranded
    /// completions) while the thread was suspended: the doorbell IPI
    /// that should have activated it was lost. Returns `true` if the
    /// thread was suspended and is now activated (the caller must
    /// schedule it); `false` if it is already active — the in-flight
    /// poll will pick the work up.
    pub fn on_watchdog(&mut self) -> bool {
        let must_wake = match self.state {
            State::Suspended => {
                self.state = State::Active;
                self.activations += 1;
                true
            }
            State::Active => false,
        };
        self.trace.record(TraceKind::Sched, None, || {
            format!(
                "io.watchdog {}",
                if must_wake {
                    "recovers lost doorbell"
                } else {
                    "thread already active"
                }
            )
        });
        must_wake
    }

    /// Cost of one poll pass over `n` queues (cache-line reads of the
    /// shared avail indices).
    pub fn poll_cost(n: usize, per_queue: SimDuration) -> SimDuration {
        per_queue * (n.max(1) as u64)
    }

    /// Total doorbell/watchdog activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total descriptors serviced across all polls.
    pub fn descriptors_serviced(&self) -> u64 {
        self.descriptors_serviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doorbell_coalesces_while_active() {
        let mut t = IoThread::new(ThreadId(7));
        assert!(t.on_doorbell());
        assert!(!t.on_doorbell());
        assert!(t.is_active());
        // The coalesced ring forces one repoll before suspension sticks.
        assert!(!t.try_suspend());
        assert!(t.try_suspend());
        assert!(t.on_doorbell());
        assert_eq!(t.activations(), 2);
    }

    #[test]
    fn watchdog_activates_only_when_suspended() {
        let mut t = IoThread::new(ThreadId(7));
        assert!(t.on_watchdog(), "suspended thread is recovered");
        assert!(t.is_active());
        assert!(!t.on_watchdog(), "active thread needs no recovery");
        // No stale repoll request is left behind by the watchdog path.
        assert!(t.try_suspend());
        assert_eq!(t.activations(), 1);
    }

    #[test]
    fn multiple_coalesced_rings_cause_exactly_one_extra_poll() {
        let mut t = IoThread::new(ThreadId(7));
        assert!(t.on_doorbell());
        assert!(!t.on_doorbell());
        assert!(!t.on_doorbell());
        let mut polls = 0;
        while !t.try_suspend() {
            polls += 1;
            assert!(polls < 10, "repoll requests must not self-renew");
        }
        assert_eq!(polls, 1, "coalesced rings trigger exactly one repoll");
        assert!(!t.is_active());
        assert_eq!(t.activations(), 1);
    }

    #[test]
    fn poll_cost_scales_with_queues() {
        let per = SimDuration::nanos(80);
        assert_eq!(IoThread::poll_cost(0, per), per); // floor of one line
        assert_eq!(IoThread::poll_cost(6, per), per * 6);
    }

    #[test]
    fn serviced_accounting() {
        let mut t = IoThread::new(ThreadId(7));
        t.record_serviced(5);
        t.record_serviced(2);
        assert_eq!(t.descriptors_serviced(), 7);
    }
}
