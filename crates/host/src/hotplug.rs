//! CPU hotplug with the core-gapping modifications (paper §4.2).
//!
//! Offlining a core migrates its threads, retargets SPIs, and — in the
//! modified path — (a) skips the frequency ramp-down so the core keeps
//! running at full speed for the CVM, and (b) ends with an SMC handing
//! the core to the RMM instead of PSCI `CPU_OFF`.

use cg_machine::{CoreId, Machine};
use cg_sim::SimDuration;

use crate::sched::Scheduler;
use crate::thread::ThreadId;

/// Outcome of an offline operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineReport {
    /// Threads migrated off the core.
    pub migrated: Vec<ThreadId>,
    /// SPI numbers retargeted to other cores.
    pub retargeted_spis: Vec<u32>,
    /// Wall-clock cost of the hotplug machinery.
    pub cost: SimDuration,
}

/// Takes `core` offline for dedication: migrates threads, retargets any
/// SPIs routed to it (to the lowest-id online core), marks it offline in
/// the machine, and — per the paper's modification — leaves frequency
/// untouched.
///
/// The caller follows up with the `CORE_DEDICATE` SMC
/// ([`cg_rmm::Rmm::dedicate_core`]).
///
/// # Panics
///
/// Panics if `core` is the only host-schedulable core (the host must
/// always keep one), or if a thread is affine only to `core`.
pub fn offline_for_dedication(
    core: CoreId,
    sched: &mut Scheduler,
    machine: &mut Machine,
    hotplug_cost: SimDuration,
) -> OfflineReport {
    let fallback = machine
        .core_ids()
        .find(|&c| c != core && machine.cpu(c).is_host_schedulable())
        .expect("cannot offline the last host core");

    // Retarget SPIs currently routed to the departing core.
    let mut retargeted = Vec::new();
    for spi in 0..64 {
        if machine.gic().spi_route(spi) == core {
            machine.gic_mut().route_spi(spi, fallback);
            retargeted.push(spi);
        }
    }

    let migrated = sched.evacuate(core);
    machine.cpu_mut(core).offline();

    OfflineReport {
        migrated,
        retargeted_spis: retargeted,
        cost: hotplug_cost,
    }
}

/// Brings a reclaimed core back online for the host scheduler.
///
/// The RMM must have released it first ([`cg_rmm::Rmm::reclaim_core`]
/// already transitions the machine state); this records the host-side
/// completion and returns the cost.
pub fn online_after_reclaim(core: CoreId, machine: &Machine, cost: SimDuration) -> SimDuration {
    assert!(
        machine.cpu(core).is_host_schedulable(),
        "{core} was not returned to the host before onlining"
    );
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::{SchedClass, ThreadKind};
    use cg_machine::HwParams;

    #[test]
    fn offline_migrates_and_retargets() {
        let mut machine = Machine::new(HwParams::small()).unwrap();
        let mut sched = Scheduler::new();
        let t = sched.spawn(
            ThreadKind::Housekeeping,
            SchedClass::Fair,
            [CoreId(2), CoreId(3)],
        );
        // Force it onto core 2's queue by picking core 3 busy first:
        // simplest: it was placed on the least-loaded = core 2 (lowest id).
        machine.gic_mut().route_spi(9, CoreId(2));
        let report =
            offline_for_dedication(CoreId(2), &mut sched, &mut machine, SimDuration::millis(2));
        assert_eq!(report.migrated, vec![t]);
        assert!(report.retargeted_spis.contains(&9));
        assert_ne!(machine.gic().spi_route(9), CoreId(2));
        assert!(!machine.cpu(CoreId(2)).is_host_schedulable());
        assert!(!sched.thread(t).can_run_on(CoreId(2)));
    }

    #[test]
    #[should_panic(expected = "last host core")]
    fn cannot_offline_last_core() {
        let mut p = HwParams::small();
        p.num_cores = 1;
        let mut machine = Machine::new(p).unwrap();
        let mut sched = Scheduler::new();
        offline_for_dedication(CoreId(0), &mut sched, &mut machine, SimDuration::ZERO);
    }

    #[test]
    fn full_dedicate_reclaim_cycle() {
        let mut machine = Machine::new(HwParams::small()).unwrap();
        let mut sched = Scheduler::new();
        let mut rmm = cg_rmm::Rmm::new(cg_rmm::RmmConfig::core_gapped());
        offline_for_dedication(CoreId(4), &mut sched, &mut machine, SimDuration::millis(2));
        rmm.dedicate_core(CoreId(4), &mut machine).unwrap();
        assert!(rmm.coregap().is_dedicated(CoreId(4)));
        rmm.reclaim_core(CoreId(4), &mut machine).unwrap();
        let cost = online_after_reclaim(CoreId(4), &machine, SimDuration::millis(1));
        assert_eq!(cost, SimDuration::millis(1));
        assert!(machine.cpu(CoreId(4)).is_host_schedulable());
    }
}
