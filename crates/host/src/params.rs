//! Host software cost parameters (KVM, VMM, and device timing).
//!
//! These complement [`cg_machine::HwParams`]: hardware charges transitions
//! and coherence; this struct charges the host software work performed on
//! host cores. The defaults are calibrated so the end-to-end simulation
//! reproduces the paper's table 3 latencies and §5.2 run-to-run latency
//! (26.18 ± 0.96 µs).

use cg_sim::SimDuration;

/// Host software timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HostParams {
    // ----- KVM exit handling -----
    /// In-kernel exit dispatch: reading the exit record, KVM bookkeeping,
    /// deciding the handler.
    pub kvm_exit_fixed: SimDuration,
    /// Returning to the userspace VMM and re-entering the kernel (the
    /// ioctl boundary), excluding device work.
    pub kvm_userspace_round: SimDuration,
    /// Host emulation of a guest timer programming (no delegation).
    pub timer_emulate: SimDuration,
    /// Host emulation of a guest SGI send (no delegation): resolving the
    /// target vCPU, marking the interrupt pending, initiating the kick.
    pub ipi_emulate: SimDuration,
    /// Queueing a virtual interrupt into a vCPU's next entry list.
    pub irq_inject: SimDuration,
    /// Handling a stage-2 fault: allocating backing memory and issuing
    /// the mapping calls (excluding the RMI transport itself).
    pub stage2_fixup: SimDuration,
    /// Issuing the next run call (marshalling the entry structure).
    pub run_call_issue: SimDuration,
    /// Additional host-side cost charged on every *confidential* VM
    /// exit: the kvmtool ioctl round trip (every REC exit surfaces to
    /// the userspace run loop), CCA interrupt-list synchronisation, and
    /// the extra KVM bookkeeping the realm interface requires. This is
    /// the dominant component of the §5.2 run-to-run latency
    /// (26.18 ± 0.96 µs).
    pub cvm_exit_overhead: SimDuration,
    /// Blocking a vCPU thread on WFI and the associated bookkeeping
    /// (shared-core mode).
    pub wfi_block: SimDuration,
    /// Poll-slice length used by the busy-wait (Quarantine-style
    /// yield-polling) run transport: the thread checks its channel and
    /// yields this often.
    pub busywait_poll_slice: SimDuration,
    /// Per-fault cost of the monitor page-table RPCs on the CCA-style
    /// interface (the RMM is invoked for *all* page-table changes).
    pub fault_rmi_transport: SimDuration,
    /// Model TDX-style separate secure/insecure page tables (§6.1): the
    /// host manipulates unprotected guest mappings directly, skipping
    /// the monitor RPCs on the stage-2 fault path.
    pub tdx_style_tables: bool,

    // ----- VMM device emulation -----
    /// Fixed VMM work per virtio-net kick (doorbell handling, queue scan).
    pub virtio_net_kick: SimDuration,
    /// Per-packet virtio-net emulation (descriptor parsing, header).
    pub virtio_net_per_packet: SimDuration,
    /// Per-byte virtio-net copy cost, in nanoseconds per byte.
    pub virtio_net_per_byte_ns: f64,
    /// Fixed VMM work per virtio-blk request.
    pub virtio_blk_request: SimDuration,
    /// Per-byte virtio-blk copy cost, in nanoseconds per byte.
    pub virtio_blk_per_byte_ns: f64,
    /// Guest-side cost of publishing one descriptor onto a shared-memory
    /// virtqueue (table write + avail-ring update + index store) on the
    /// virtio fast path, replacing the exit per kick.
    pub virtio_desc_publish: SimDuration,

    // ----- devices -----
    /// One-way wire latency between the guest NIC and the benchmark peer.
    pub nic_wire_latency: SimDuration,
    /// NIC line rate in gigabits per second (the paper uses an Intel
    /// E2000 200 GbE IPU).
    pub nic_bandwidth_gbps: f64,
    /// Average access latency of the virtual disk backing store.
    pub disk_latency: SimDuration,
    /// Disk streaming bandwidth in MiB/s.
    pub disk_bandwidth_mibs: f64,

    // ----- guest timing -----
    /// Guest kernel tick rate (Linux CONFIG_HZ; arm64 defconfig uses 250).
    pub guest_hz: u32,
}

impl HostParams {
    /// Defaults calibrated against the paper's evaluation platform.
    pub fn calibrated() -> HostParams {
        HostParams {
            kvm_exit_fixed: SimDuration::nanos(1_300),
            kvm_userspace_round: SimDuration::nanos(3_600),
            timer_emulate: SimDuration::nanos(1_500),
            ipi_emulate: SimDuration::nanos(2_200),
            irq_inject: SimDuration::nanos(800),
            stage2_fixup: SimDuration::nanos(6_000),
            run_call_issue: SimDuration::nanos(700),
            cvm_exit_overhead: SimDuration::nanos(18_000),
            wfi_block: SimDuration::nanos(900),
            busywait_poll_slice: SimDuration::micros(5),
            fault_rmi_transport: SimDuration::nanos(3_200),
            tdx_style_tables: false,

            virtio_net_kick: SimDuration::nanos(2_800),
            virtio_net_per_packet: SimDuration::nanos(1_100),
            virtio_net_per_byte_ns: 0.06,
            virtio_blk_request: SimDuration::nanos(4_500),
            virtio_blk_per_byte_ns: 0.05,
            virtio_desc_publish: SimDuration::nanos(350),

            nic_wire_latency: SimDuration::micros(4),
            nic_bandwidth_gbps: 200.0,
            disk_latency: SimDuration::micros(70),
            disk_bandwidth_mibs: 2_000.0,

            guest_hz: 250,
        }
    }

    /// Time for `bytes` to cross the NIC at line rate.
    pub fn nic_serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos_f64(bytes as f64 * 8.0 / self.nic_bandwidth_gbps)
    }

    /// Time for `bytes` to stream from/to the disk backing store.
    pub fn disk_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos_f64(
            bytes as f64 / (self.disk_bandwidth_mibs * 1024.0 * 1024.0) * 1e9,
        )
    }

    /// VMM emulation cost for a virtio-net packet of `bytes`.
    pub fn virtio_net_packet_cost(&self, bytes: u64) -> SimDuration {
        self.virtio_net_per_packet
            + SimDuration::from_nanos_f64(bytes as f64 * self.virtio_net_per_byte_ns)
    }

    /// VMM emulation cost for a virtio-blk request of `bytes`.
    pub fn virtio_blk_request_cost(&self, bytes: u64) -> SimDuration {
        self.virtio_blk_request
            + SimDuration::from_nanos_f64(bytes as f64 * self.virtio_blk_per_byte_ns)
    }

    /// The guest tick period (1/HZ).
    pub fn tick_period(&self) -> SimDuration {
        SimDuration::nanos(1_000_000_000 / self.guest_hz as u64)
    }
}

impl Default for HostParams {
    fn default() -> HostParams {
        HostParams::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_serialization_at_200gbe() {
        let p = HostParams::calibrated();
        // 1500 bytes at 200 Gb/s = 60 ns.
        assert_eq!(p.nic_serialize(1500), SimDuration::nanos(60));
    }

    #[test]
    fn disk_transfer_scales_with_size() {
        let p = HostParams::calibrated();
        let one_mib = p.disk_transfer(1 << 20);
        let ten_mib = p.disk_transfer(10 << 20);
        assert!(ten_mib > one_mib * 9 && ten_mib < one_mib * 11);
    }

    #[test]
    fn tick_period_matches_hz() {
        let p = HostParams::calibrated();
        assert_eq!(p.tick_period(), SimDuration::millis(4));
    }

    #[test]
    fn packet_cost_grows_with_size() {
        let p = HostParams::calibrated();
        assert!(p.virtio_net_packet_cost(65536) > p.virtio_net_packet_cost(64));
    }
}
