//! Host threads: identity, scheduling class, and state.

use std::collections::BTreeSet;
use std::fmt;

use cg_cca::RecId;
use cg_machine::CoreId;

use crate::vmm::DeviceId;

/// Identifies a host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Scheduling class, mirroring Linux's split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedClass {
    /// Real-time FIFO with a priority (higher wins). The prototype runs
    /// vCPU threads and the wake-up thread here so they run to completion
    /// once woken (paper §4.3).
    Fifo(u8),
    /// The fair (CFS-like) class used by VMM I/O threads and everything
    /// else.
    Fair,
}

impl SchedClass {
    /// Returns `true` if `self` strictly preempts `other`.
    pub fn preempts(self, other: SchedClass) -> bool {
        match (self, other) {
            (SchedClass::Fifo(a), SchedClass::Fifo(b)) => a > b,
            (SchedClass::Fifo(_), SchedClass::Fair) => true,
            (SchedClass::Fair, _) => false,
        }
    }
}

/// What a thread does — the tag `cg-core` dispatches on when the thread
/// gets CPU time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// A KVM vCPU thread: issues run calls for one vCPU.
    Vcpu(RecId),
    /// The wake-up thread servicing the CVM-exit doorbell (fig. 4).
    Wakeup,
    /// A VMM I/O emulation thread bound to one device.
    VmmIo(DeviceId),
    /// The dedicated I/O completion plane: polls the shared-memory
    /// virtqueue avail rings of every fast-path device and drives their
    /// backends, so guest kicks are doorbells instead of exits.
    IoPlane,
    /// Generic host housekeeping / benchmark driver work.
    Housekeeping,
}

/// Thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// On a run queue, waiting for CPU.
    Runnable,
    /// Executing on a core.
    Running(CoreId),
    /// Blocked (waiting on a run-call return, I/O, or a doorbell).
    Blocked,
    /// Finished.
    Exited,
}

/// One host thread.
#[derive(Debug, Clone)]
pub struct Thread {
    id: ThreadId,
    kind: ThreadKind,
    class: SchedClass,
    state: ThreadState,
    affinity: BTreeSet<CoreId>,
}

impl Thread {
    /// Creates a runnable thread with the given affinity set.
    ///
    /// # Panics
    ///
    /// Panics if `affinity` is empty — a thread must be runnable
    /// somewhere.
    pub fn new(
        id: ThreadId,
        kind: ThreadKind,
        class: SchedClass,
        affinity: impl IntoIterator<Item = CoreId>,
    ) -> Thread {
        let affinity: BTreeSet<CoreId> = affinity.into_iter().collect();
        assert!(!affinity.is_empty(), "thread affinity must be non-empty");
        Thread {
            id,
            kind,
            class,
            state: ThreadState::Runnable,
            affinity,
        }
    }

    /// Thread id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// What the thread does.
    pub fn kind(&self) -> ThreadKind {
        self.kind
    }

    /// Scheduling class.
    pub fn class(&self) -> SchedClass {
        self.class
    }

    /// Current state.
    pub fn state(&self) -> ThreadState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: ThreadState) {
        self.state = state;
    }

    /// The cores this thread may run on.
    pub fn affinity(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.affinity.iter().copied()
    }

    /// Returns `true` if the thread may run on `core`.
    pub fn can_run_on(&self, core: CoreId) -> bool {
        self.affinity.contains(&core)
    }

    /// Replaces the affinity set (used when cores go offline).
    ///
    /// # Panics
    ///
    /// Panics if the new set is empty.
    pub fn set_affinity(&mut self, affinity: impl IntoIterator<Item = CoreId>) {
        let affinity: BTreeSet<CoreId> = affinity.into_iter().collect();
        assert!(!affinity.is_empty(), "thread affinity must be non-empty");
        self.affinity = affinity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_machine::RealmId;

    #[test]
    fn fifo_preemption_rules() {
        assert!(SchedClass::Fifo(2).preempts(SchedClass::Fifo(1)));
        assert!(!SchedClass::Fifo(1).preempts(SchedClass::Fifo(1)));
        assert!(SchedClass::Fifo(0).preempts(SchedClass::Fair));
        assert!(!SchedClass::Fair.preempts(SchedClass::Fifo(0)));
        assert!(!SchedClass::Fair.preempts(SchedClass::Fair));
    }

    #[test]
    fn thread_construction_and_affinity() {
        let t = Thread::new(
            ThreadId(1),
            ThreadKind::Vcpu(RecId::new(RealmId(0), 0)),
            SchedClass::Fifo(2),
            [CoreId(0), CoreId(1)],
        );
        assert!(t.can_run_on(CoreId(0)));
        assert!(!t.can_run_on(CoreId(2)));
        assert_eq!(t.state(), ThreadState::Runnable);
        assert_eq!(t.affinity().count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_affinity_panics() {
        Thread::new(
            ThreadId(1),
            ThreadKind::Housekeeping,
            SchedClass::Fair,
            std::iter::empty(),
        );
    }
}
