//! The host kernel scheduler: per-core run queues with FIFO and fair
//! classes.
//!
//! Deterministic by construction: ties break on enqueue order, and wake
//! placement picks the least-loaded allowed core (lowest id on ties).

use std::collections::{BTreeMap, VecDeque};

use cg_machine::CoreId;
use cg_sim::{Profiler, SimDuration, SpanId, SpanKind, TraceHandle, TraceKind};

use crate::thread::{SchedClass, Thread, ThreadId, ThreadKind, ThreadState};

/// Default fair-class timeslice.
pub const FAIR_TIMESLICE: SimDuration = SimDuration::millis(3);

/// Per-core run queues.
#[derive(Debug, Default)]
struct RunQueue {
    /// FIFO-class threads ordered by (priority desc, enqueue order).
    fifo: Vec<(u8, u64, ThreadId)>,
    /// Fair-class round robin.
    fair: VecDeque<ThreadId>,
    /// Currently running thread.
    current: Option<ThreadId>,
}

impl RunQueue {
    fn runnable_len(&self) -> usize {
        self.fifo.len() + self.fair.len()
    }
}

/// The scheduler: owns all host threads and their queues.
///
/// # Example
///
/// ```
/// use cg_host::{SchedClass, Scheduler, ThreadKind};
/// use cg_machine::CoreId;
///
/// let mut sched = Scheduler::new();
/// let tid = sched.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [CoreId(0)]);
/// assert_eq!(sched.pick_next(CoreId(0)), Some(tid));
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    threads: BTreeMap<ThreadId, Thread>,
    queues: BTreeMap<CoreId, RunQueue>,
    /// Where each thread last ran (wake placement affinity).
    last_core: BTreeMap<ThreadId, CoreId>,
    next_tid: u32,
    enqueue_seq: u64,
    /// Structured trace sink (disabled by default).
    trace: TraceHandle,
    /// Span profiler sink (disabled by default); each on-CPU slice —
    /// pick to yield/block/exit — becomes one span.
    profiler: Profiler,
    /// Open slice span per core (only populated while profiling).
    open_slices: BTreeMap<CoreId, SpanId>,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Attaches a structured trace; scheduling decisions are recorded
    /// through it from then on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attaches a span profiler; every on-CPU slice is recorded through
    /// it from then on.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Spawns a new runnable thread and enqueues it.
    pub fn spawn(
        &mut self,
        kind: ThreadKind,
        class: SchedClass,
        affinity: impl IntoIterator<Item = CoreId>,
    ) -> ThreadId {
        let id = ThreadId(self.next_tid);
        self.next_tid += 1;
        let thread = Thread::new(id, kind, class, affinity);
        self.threads.insert(id, thread);
        self.enqueue(id);
        id
    }

    /// Immutable access to a thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id (a dangling thread id is a logic bug).
    pub fn thread(&self, id: ThreadId) -> &Thread {
        self.threads.get(&id).expect("unknown thread id")
    }

    fn thread_mut(&mut self, id: ThreadId) -> &mut Thread {
        self.threads.get_mut(&id).expect("unknown thread id")
    }

    /// All thread ids.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.threads.keys().copied().collect()
    }

    /// Chooses the core to enqueue a runnable thread on: the core it
    /// last ran on if that queue is no longer than the shortest (cache
    /// affinity, as CFS prefers `prev_cpu`), else the allowed core with
    /// the fewest runnable threads (ties → lowest id).
    fn place(&self, id: ThreadId) -> CoreId {
        let t = self.thread(id);
        let load = |c: &CoreId| self.queues.get(c).map(|q| q.runnable_len()).unwrap_or(0);
        let best = t
            .affinity()
            .min_by_key(|c| (load(c), c.index()))
            .expect("affinity non-empty");
        match self.last_core.get(&id) {
            Some(&prev) if t.can_run_on(prev) && load(&prev) <= load(&best) => prev,
            _ => best,
        }
    }

    fn enqueue(&mut self, id: ThreadId) {
        let core = self.place(id);
        let class = self.thread(id).class();
        let seq = self.enqueue_seq;
        self.enqueue_seq += 1;
        let q = self.queues.entry(core).or_default();
        match class {
            SchedClass::Fifo(prio) => {
                q.fifo.push((prio, seq, id));
                // Highest priority first; FIFO within a priority.
                q.fifo.sort_by_key(|&(p, s, _)| (std::cmp::Reverse(p), s));
            }
            SchedClass::Fair => q.fair.push_back(id),
        }
        self.thread_mut(id).set_state(ThreadState::Runnable);
        self.trace.record(TraceKind::Sched, Some(core.0), || {
            format!("sched.enqueue {id} seq={seq}")
        });
    }

    /// Picks the next thread to run on `core` and marks it running.
    /// Returns `None` if the queue is empty (the core idles).
    pub fn pick_next(&mut self, core: CoreId) -> Option<ThreadId> {
        let q = self.queues.entry(core).or_default();
        debug_assert!(q.current.is_none(), "core already running a thread");
        let id = if !q.fifo.is_empty() {
            Some(q.fifo.remove(0).2)
        } else {
            q.fair.pop_front()
        }?;
        q.current = Some(id);
        self.last_core.insert(id, core);
        self.thread_mut(id).set_state(ThreadState::Running(core));
        self.trace.record(TraceKind::Sched, Some(core.0), || {
            format!("sched.pick {id}")
        });
        if self.profiler.is_enabled() {
            let span = self
                .profiler
                .begin(SpanKind::SchedSlice, Some(core.0), None, None);
            self.open_slices.insert(core, span);
        }
        Some(id)
    }

    /// The thread currently running on `core`.
    pub fn current(&self, core: CoreId) -> Option<ThreadId> {
        self.queues.get(&core).and_then(|q| q.current)
    }

    /// Number of runnable (queued, not running) threads on `core`.
    pub fn runnable_on(&self, core: CoreId) -> usize {
        self.queues
            .get(&core)
            .map(|q| q.runnable_len())
            .unwrap_or(0)
    }

    /// The running thread on `core` yields the CPU but stays runnable
    /// (end of timeslice): it is re-enqueued.
    pub fn yield_current(&mut self, core: CoreId) {
        if let Some(id) = self.take_current(core) {
            self.enqueue(id);
        }
    }

    /// The running thread on `core` blocks.
    ///
    /// # Panics
    ///
    /// Panics if nothing is running on `core`.
    pub fn block_current(&mut self, core: CoreId) -> ThreadId {
        let id = self.take_current(core).expect("no running thread to block");
        self.thread_mut(id).set_state(ThreadState::Blocked);
        self.trace.record(TraceKind::Sched, Some(core.0), || {
            format!("sched.block {id}")
        });
        id
    }

    /// The running thread on `core` exits and is reaped immediately:
    /// its `Thread` record and wake-placement hint are removed, so the
    /// scheduler's maps stay bounded by the number of *live* threads no
    /// matter how many threads churn through over the node's lifetime.
    /// The returned id is dangling from this point on.
    ///
    /// # Panics
    ///
    /// Panics if nothing is running on `core`.
    pub fn exit_current(&mut self, core: CoreId) -> ThreadId {
        let id = self.take_current(core).expect("no running thread to exit");
        self.trace.record(TraceKind::Sched, Some(core.0), || {
            format!("sched.exit {id}")
        });
        self.threads.remove(&id);
        self.last_core.remove(&id);
        id
    }

    /// Number of live (un-reaped) threads the scheduler tracks.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of wake-placement hints retained (≤ live threads).
    pub fn placement_hints(&self) -> usize {
        self.last_core.len()
    }

    /// Returns `true` if `id` refers to a live (un-reaped) thread.
    pub fn contains(&self, id: ThreadId) -> bool {
        self.threads.contains_key(&id)
    }

    fn take_current(&mut self, core: CoreId) -> Option<ThreadId> {
        let id = self.queues.entry(core).or_default().current.take();
        if id.is_some() {
            if let Some(span) = self.open_slices.remove(&core) {
                self.profiler.end(span);
            }
        }
        id
    }

    /// Wakes a blocked thread, enqueueing it. Returns the core it was
    /// placed on and whether it should preempt that core's current
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not blocked (waking a runnable/running
    /// thread indicates a lost-wakeup style bug in the caller).
    pub fn wake(&mut self, id: ThreadId) -> (CoreId, bool) {
        assert_eq!(
            self.thread(id).state(),
            ThreadState::Blocked,
            "wake of non-blocked {id}"
        );
        let core = self.place(id);
        let class = self.thread(id).class();
        self.enqueue(id);
        let preempts = self
            .current(core)
            .map(|cur| class.preempts(self.thread(cur).class()))
            .unwrap_or(false);
        self.trace.record(TraceKind::Sched, Some(core.0), || {
            format!(
                "sched.wake {id} -> core{}{}",
                core.0,
                if preempts { " preempts" } else { "" }
            )
        });
        (core, preempts)
    }

    /// Returns `true` if the thread is blocked. Total over arbitrary
    /// ids: an exited (reaped) thread is simply not blocked, so stale
    /// wake sources (late doorbells, watchdog rescans) stay harmless.
    pub fn is_blocked(&self, id: ThreadId) -> bool {
        self.threads
            .get(&id)
            .map(|t| t.state() == ThreadState::Blocked)
            .unwrap_or(false)
    }

    /// Closes every open per-core slice span. Called when a run ends
    /// with threads still on CPU (a truncated run), so the
    /// unbalanced-span tripwire only counts genuinely leaked spans.
    pub fn finish_open_slices(&mut self) {
        for (_, span) in std::mem::take(&mut self.open_slices) {
            self.profiler.end(span);
        }
    }

    /// Removes `core` from scheduling: the running thread (if any) and
    /// all queued threads are re-homed to their remaining affinity.
    /// Returns the migrated thread ids. Used by CPU hotplug.
    ///
    /// # Panics
    ///
    /// Panics if a thread's affinity becomes empty (hotplug of the last
    /// allowed core — the caller must re-affine such threads first).
    pub fn evacuate(&mut self, core: CoreId) -> Vec<ThreadId> {
        if let Some(span) = self.open_slices.remove(&core) {
            self.profiler.end(span);
        }
        let q = self.queues.remove(&core).unwrap_or_default();
        let queued: Vec<ThreadId> = q
            .current
            .into_iter()
            .chain(q.fifo.into_iter().map(|(_, _, id)| id))
            .chain(q.fair)
            .collect();
        // *Every* thread loses the core from its mask — including blocked
        // ones, which would otherwise wake onto the offline core and be
        // stranded (Linux: cpu_active masking).
        let all: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|(_, t)| t.state() != ThreadState::Exited && t.can_run_on(core))
            .map(|(&id, _)| id)
            .collect();
        for id in all {
            let new_affinity: Vec<CoreId> =
                self.thread(id).affinity().filter(|&c| c != core).collect();
            self.thread_mut(id).set_affinity(new_affinity);
        }
        self.last_core.retain(|_, c| *c != core);
        let mut migrated = Vec::new();
        for id in queued {
            self.enqueue(id);
            migrated.push(id);
        }
        migrated
    }

    /// Narrows a thread's affinity, removing `core`; if the thread sits
    /// queued on `core` it is migrated immediately: pulled out of that
    /// core's run queue and re-enqueued through normal placement over
    /// the narrowed mask, so it can never be picked to run on `core`
    /// again. The wake-placement hint is also dropped if it pointed at
    /// `core`, so a later wake does not steer the thread back.
    ///
    /// The thread must not be *running* on `core` — use
    /// [`Scheduler::evacuate`] to clear a whole core.
    ///
    /// # Panics
    ///
    /// Panics if the affinity would become empty.
    pub fn remove_core_affinity(&mut self, id: ThreadId, core: CoreId) {
        let new_affinity: Vec<CoreId> = self.thread(id).affinity().filter(|&c| c != core).collect();
        self.thread_mut(id).set_affinity(new_affinity);
        if self.last_core.get(&id) == Some(&core) {
            self.last_core.remove(&id);
        }
        let queued_here = self.queues.get_mut(&core).is_some_and(|q| {
            debug_assert_ne!(
                q.current,
                Some(id),
                "remove_core_affinity on the thread running there"
            );
            let before = q.runnable_len();
            q.fifo.retain(|&(_, _, t)| t != id);
            q.fair.retain(|&t| t != id);
            before != q.runnable_len()
        });
        if queued_here {
            self.trace.record(TraceKind::Sched, Some(core.0), || {
                format!("sched.migrate {id} off core{}", core.0)
            });
            self.enqueue(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    #[test]
    fn fifo_beats_fair() {
        let mut s = Scheduler::new();
        let fair = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        let fifo = s.spawn(ThreadKind::Wakeup, SchedClass::Fifo(1), [C0]);
        assert_eq!(s.pick_next(C0), Some(fifo));
        s.block_current(C0);
        assert_eq!(s.pick_next(C0), Some(fair));
    }

    #[test]
    fn fifo_priority_order_stable() {
        let mut s = Scheduler::new();
        let lo = s.spawn(ThreadKind::Housekeeping, SchedClass::Fifo(1), [C0]);
        let hi1 = s.spawn(ThreadKind::Housekeeping, SchedClass::Fifo(5), [C0]);
        let hi2 = s.spawn(ThreadKind::Housekeeping, SchedClass::Fifo(5), [C0]);
        assert_eq!(s.pick_next(C0), Some(hi1));
        s.block_current(C0);
        assert_eq!(s.pick_next(C0), Some(hi2));
        s.block_current(C0);
        assert_eq!(s.pick_next(C0), Some(lo));
    }

    #[test]
    fn fair_round_robin_via_yield() {
        let mut s = Scheduler::new();
        let a = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        let b = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        assert_eq!(s.pick_next(C0), Some(a));
        s.yield_current(C0);
        assert_eq!(s.pick_next(C0), Some(b));
        s.yield_current(C0);
        assert_eq!(s.pick_next(C0), Some(a));
    }

    #[test]
    fn wake_places_on_least_loaded_core() {
        let mut s = Scheduler::new();
        // Load up C0 with two runnable threads.
        s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0, C1]);
        // t went to C1 (empty).
        assert_eq!(s.pick_next(C1), Some(t));
        s.block_current(C1);
        let (core, _) = s.wake(t);
        assert_eq!(core, C1);
    }

    #[test]
    fn wake_preempts_lower_class() {
        let mut s = Scheduler::new();
        let fair = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        let hi = s.spawn(ThreadKind::Wakeup, SchedClass::Fifo(3), [C0]);
        // hi runs first, blocks; fair runs.
        assert_eq!(s.pick_next(C0), Some(hi));
        s.block_current(C0);
        assert_eq!(s.pick_next(C0), Some(fair));
        // Waking hi on C0 must report preemption of fair.
        let (core, preempt) = s.wake(hi);
        assert_eq!(core, C0);
        assert!(preempt);
    }

    #[test]
    fn block_and_exit_lifecycle() {
        let mut s = Scheduler::new();
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        s.pick_next(C0);
        let blocked = s.block_current(C0);
        assert_eq!(blocked, t);
        assert!(s.is_blocked(t));
        s.wake(t);
        assert_eq!(s.pick_next(C0), Some(t));
        assert_eq!(s.exit_current(C0), t);
        // Exit reaps: the record is gone, stale queries stay harmless.
        assert!(!s.contains(t));
        assert!(!s.is_blocked(t));
        assert_eq!(s.thread_count(), 0);
        assert_eq!(s.pick_next(C0), None);
    }

    /// Regression: exited threads used to linger in `threads` and
    /// `last_core` forever — unbounded growth under VM churn. A node
    /// cycling through thousands of short-lived threads must keep both
    /// maps bounded by the number of *live* threads.
    #[test]
    fn spawn_exit_churn_keeps_maps_bounded() {
        let mut s = Scheduler::new();
        // One long-lived resident thread, parked blocked.
        let resident = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        assert_eq!(s.pick_next(C0), Some(resident));
        s.block_current(C0);
        for _ in 0..1_000 {
            let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
            assert_eq!(s.pick_next(C0), Some(t));
            assert_eq!(s.exit_current(C0), t);
            assert!(s.thread_count() <= 2, "threads map grew: churn leaked");
            assert!(s.placement_hints() <= 2, "last_core map grew");
        }
        assert_eq!(s.thread_count(), 1);
        // The resident thread is unaffected by 1k reaps around it.
        s.wake(resident);
        assert_eq!(s.pick_next(C0), Some(resident));
    }

    /// Regression: `remove_core_affinity` only narrowed the mask, so a
    /// thread already queued on the removed core was later picked to
    /// run outside its affinity. It must be migrated out of the queue
    /// immediately.
    #[test]
    fn remove_core_affinity_migrates_queued_thread() {
        let mut s = Scheduler::new();
        // Occupy C1 so placement puts `t` on the (empty) core C0.
        s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C1]);
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0, C1]);
        assert_eq!(s.runnable_on(C0), 1);
        s.remove_core_affinity(t, C0);
        assert!(!s.thread(t).can_run_on(C0));
        // The queued thread moved to C1 *now*, not lazily.
        assert_eq!(s.runnable_on(C0), 0);
        assert_eq!(s.runnable_on(C1), 2);
        // C0 never picks it; C1 does.
        assert_eq!(s.pick_next(C0), None);
        let picked = [s.pick_next(C1).unwrap(), {
            s.block_current(C1);
            s.pick_next(C1).unwrap()
        }];
        assert!(picked.contains(&t));
    }

    /// `remove_core_affinity` also drops a stale wake-placement hint,
    /// so a blocked thread whose favourite core was removed wakes onto
    /// an allowed core.
    #[test]
    fn remove_core_affinity_clears_stale_placement_hint() {
        let mut s = Scheduler::new();
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0, C1]);
        assert_eq!(s.pick_next(C0), Some(t));
        s.block_current(C0); // last ran on C0
        s.remove_core_affinity(t, C0);
        let (core, _) = s.wake(t);
        assert_eq!(core, C1);
        assert_eq!(s.pick_next(C1), Some(t));
    }

    #[test]
    #[should_panic(expected = "wake of non-blocked")]
    fn waking_runnable_thread_panics() {
        let mut s = Scheduler::new();
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        s.wake(t);
    }

    #[test]
    fn profiler_records_slices() {
        let mut s = Scheduler::new();
        let p = Profiler::capture();
        s.set_profiler(p.clone());
        let t = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0]);
        assert_eq!(s.pick_next(C0), Some(t));
        s.yield_current(C0);
        assert_eq!(s.pick_next(C0), Some(t));
        s.block_current(C0);
        assert_eq!(p.closed_count(), 2);
        assert_eq!(p.snapshot()[0].kind, SpanKind::SchedSlice);
        assert_eq!(p.snapshot()[0].core, Some(0));
    }

    #[test]
    fn evacuate_migrates_everything() {
        let mut s = Scheduler::new();
        let a = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0, C1]);
        let b = s.spawn(ThreadKind::Housekeeping, SchedClass::Fifo(1), [C0, C1]);
        // Make both sit on C0: spawn placed a on C0 (empty), b on C1?
        // Place is least-loaded; a→C0, b→C1. Run b on C1 so evacuation of
        // C0 moves only a.
        assert_eq!(s.pick_next(C1), Some(b));
        let migrated = s.evacuate(C0);
        assert_eq!(migrated, vec![a]);
        assert!(!s.thread(a).can_run_on(C0));
        assert_eq!(s.runnable_on(C1), 1);
    }

    #[test]
    fn evacuate_running_thread_requeues_it() {
        let mut s = Scheduler::new();
        let a = s.spawn(ThreadKind::Housekeeping, SchedClass::Fair, [C0, C1]);
        assert_eq!(s.pick_next(C0), Some(a));
        let migrated = s.evacuate(C0);
        assert_eq!(migrated, vec![a]);
        assert_eq!(s.thread(a).state(), ThreadState::Runnable);
        assert_eq!(s.pick_next(C1), Some(a));
    }
}
