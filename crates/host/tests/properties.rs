//! Property tests for the host scheduler's and core planner's
//! invariants.

use cg_host::{CorePlanner, SchedClass, Scheduler, ThreadKind};
use cg_machine::{CoreId, RealmId};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Spawn(bool, u8), // fifo?, priority
    RunAndBlock,
    RunAndYield,
    WakeOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (prop::bool::ANY, 0u8..4).prop_map(|(f, p)| Op::Spawn(f, p)),
        Just(Op::RunAndBlock),
        Just(Op::RunAndYield),
        Just(Op::WakeOldest),
    ]
}

proptest! {
    /// Under arbitrary spawn/block/yield/wake sequences on one core:
    /// a FIFO thread is never passed over in favour of a fair thread,
    /// and every thread is in exactly one state.
    #[test]
    fn fifo_always_beats_fair(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let core = CoreId(0);
        let mut sched = Scheduler::new();
        let mut blocked: Vec<cg_host::ThreadId> = Vec::new();
        let mut fifo_runnable = 0i64;
        for op in ops {
            match op {
                Op::Spawn(fifo, prio) => {
                    let class = if fifo { SchedClass::Fifo(prio) } else { SchedClass::Fair };
                    sched.spawn(ThreadKind::Housekeeping, class, [core]);
                    if fifo {
                        fifo_runnable += 1;
                    }
                }
                Op::RunAndBlock | Op::RunAndYield => {
                    if let Some(tid) = sched.pick_next(core) {
                        let is_fifo = matches!(sched.thread(tid).class(), SchedClass::Fifo(_));
                        if fifo_runnable > 0 {
                            prop_assert!(is_fifo, "picked fair while FIFO runnable");
                        }
                        if matches!(op, Op::RunAndBlock) {
                            sched.block_current(core);
                            if is_fifo {
                                fifo_runnable -= 1;
                            }
                            blocked.push(tid);
                        } else {
                            sched.yield_current(core);
                        }
                    }
                }
                Op::WakeOldest => {
                    if !blocked.is_empty() {
                        let tid = blocked.remove(0);
                        sched.wake(tid);
                        if matches!(sched.thread(tid).class(), SchedClass::Fifo(_)) {
                            fifo_runnable += 1;
                        }
                    }
                }
            }
        }
    }

    /// Evacuating a core re-homes every thread exactly once and leaves
    /// nothing affine to the evacuated core.
    #[test]
    fn evacuation_is_total(n_threads in 1usize..20) {
        let mut sched = Scheduler::new();
        let cores = [CoreId(0), CoreId(1)];
        let mut spawned = Vec::new();
        for i in 0..n_threads {
            let class = if i % 2 == 0 { SchedClass::Fair } else { SchedClass::Fifo(1) };
            spawned.push(sched.spawn(ThreadKind::Housekeeping, class, cores));
        }
        let migrated = sched.evacuate(CoreId(0));
        for tid in &spawned {
            prop_assert!(!sched.thread(*tid).can_run_on(CoreId(0)));
        }
        // Everything that sat on core 0 migrated; nothing migrated twice.
        let mut seen = std::collections::BTreeSet::new();
        for tid in migrated {
            prop_assert!(seen.insert(tid));
        }
        // All threads remain schedulable on core 1.
        let mut picked = 0;
        while sched.pick_next(CoreId(1)).is_some() {
            sched.block_current(CoreId(1));
            picked += 1;
        }
        prop_assert_eq!(picked, n_threads);
    }
}

// ===================== core planner state machine =====================

#[derive(Debug, Clone)]
enum PlanOp {
    Admit(u8, u16),
    AdmitContiguous(u8, u16),
    Release(u8),
    Grow(u8, u16),
    Shrink(u8, u16),
    Reserve(u8),
    Unreserve(u8),
    Replan,
}

fn plan_op_strategy() -> impl Strategy<Value = PlanOp> {
    prop_oneof![
        (0u8..12, 0u16..6).prop_map(|(r, n)| PlanOp::Admit(r, n)),
        (0u8..12, 0u16..6).prop_map(|(r, n)| PlanOp::AdmitContiguous(r, n)),
        (0u8..12).prop_map(PlanOp::Release),
        (0u8..12, 1u16..4).prop_map(|(r, n)| PlanOp::Grow(r, n)),
        (0u8..12, 1u16..4).prop_map(|(r, n)| PlanOp::Shrink(r, n)),
        (0u8..24).prop_map(PlanOp::Reserve),
        (0u8..24).prop_map(PlanOp::Unreserve),
        Just(PlanOp::Replan),
    ]
}

/// Planner state invariants that must hold after *every* operation.
fn check_planner_invariants(p: &CorePlanner, pool: &BTreeSet<CoreId>) -> Result<(), TestCaseError> {
    // Allocations pairwise disjoint, and no core allocated twice.
    let mut allocated = BTreeSet::new();
    for realm in p.admitted_realms() {
        for &c in p.allocation(realm).unwrap() {
            prop_assert!(allocated.insert(c), "core {c:?} allocated twice");
        }
    }
    // allocated ∪ free == pool, disjointly.
    let free: BTreeSet<CoreId> = p.free_list().iter().copied().collect();
    prop_assert_eq!(free.len(), p.free_list().len(), "free list has duplicates");
    prop_assert!(allocated.is_disjoint(&free), "core both allocated and free");
    let union: BTreeSet<CoreId> = allocated.union(&free).copied().collect();
    prop_assert_eq!(&union, pool, "allocated ∪ free != pool");
    // Free list sorted (deterministic admissions depend on it).
    prop_assert!(p.free_list().windows(2).all(|w| w[0] < w[1]));
    // Reserved relocation targets are always a subset of the free list:
    // nothing may run on a core an in-flight move is about to occupy.
    for c in p.reserved_list() {
        prop_assert!(free.contains(&c), "reserved core {c:?} is not free");
    }
    // Fragmentation is total and in [0, 1].
    let frag = p.fragmentation();
    prop_assert!(frag.is_finite() && (0.0..=1.0).contains(&frag));
    Ok(())
}

proptest! {
    /// State machine over random admit/release/resize/replan sequences:
    /// allocations stay pairwise disjoint, allocated ∪ free == pool,
    /// fragmentation stays in [0, 1], replanning is idempotent once
    /// compact, and the replan move list is collision-free when applied
    /// strictly sequentially — no transient co-location of two realms
    /// on one dedicated core, the property live rebinding relies on.
    #[test]
    fn planner_churn_preserves_invariants(
        pool_size in 4u16..24,
        ops in prop::collection::vec(plan_op_strategy(), 1..80),
    ) {
        let pool: BTreeSet<CoreId> = (1..=pool_size).map(CoreId).collect();
        let mut p = CorePlanner::new(pool.iter().copied());
        for op in ops {
            match op {
                PlanOp::Admit(r, n) => {
                    let _ = p.admit(RealmId(r as u32), n);
                }
                PlanOp::AdmitContiguous(r, n) => {
                    let _ = p.admit_contiguous(RealmId(r as u32), n);
                }
                PlanOp::Release(r) => {
                    let _ = p.release(RealmId(r as u32));
                }
                PlanOp::Grow(r, n) => {
                    let _ = p.grow(RealmId(r as u32), n);
                }
                PlanOp::Shrink(r, n) => {
                    let _ = p.shrink(RealmId(r as u32), n);
                }
                PlanOp::Reserve(i) => {
                    if let Some(&c) = p.free_list().get(i as usize) {
                        p.reserve(c);
                    }
                }
                PlanOp::Unreserve(i) => {
                    if let Some(c) = p.reserved_list().get(i as usize).copied() {
                        p.unreserve(c);
                    }
                }
                PlanOp::Replan => {
                    // The planned moves must be applicable strictly in
                    // order with every target free at apply time.
                    let moves = p.plan_compact();
                    let mut occupied: BTreeSet<CoreId> = p
                        .admitted_realms()
                        .iter()
                        .flat_map(|&r| p.allocation(r).unwrap().iter().copied())
                        .collect();
                    for &(_, from, to) in &moves {
                        prop_assert!(
                            !occupied.contains(&to),
                            "move targets occupied core {to:?}"
                        );
                        prop_assert!(occupied.remove(&from));
                        occupied.insert(to);
                    }
                    for &(realm, from, to) in &moves {
                        prop_assert!(p.apply_move(realm, from, to).is_ok());
                    }
                    // Idempotent once compact: nothing left to move.
                    prop_assert!(p.plan_compact().is_empty(), "replan not idempotent");
                }
            }
            check_planner_invariants(&p, &pool)?;
        }
    }
}
