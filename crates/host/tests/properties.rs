//! Property tests for the host scheduler's invariants.

use cg_host::{SchedClass, Scheduler, ThreadKind};
use cg_machine::CoreId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Spawn(bool, u8), // fifo?, priority
    RunAndBlock,
    RunAndYield,
    WakeOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (prop::bool::ANY, 0u8..4).prop_map(|(f, p)| Op::Spawn(f, p)),
        Just(Op::RunAndBlock),
        Just(Op::RunAndYield),
        Just(Op::WakeOldest),
    ]
}

proptest! {
    /// Under arbitrary spawn/block/yield/wake sequences on one core:
    /// a FIFO thread is never passed over in favour of a fair thread,
    /// and every thread is in exactly one state.
    #[test]
    fn fifo_always_beats_fair(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let core = CoreId(0);
        let mut sched = Scheduler::new();
        let mut blocked: Vec<cg_host::ThreadId> = Vec::new();
        let mut fifo_runnable = 0i64;
        for op in ops {
            match op {
                Op::Spawn(fifo, prio) => {
                    let class = if fifo { SchedClass::Fifo(prio) } else { SchedClass::Fair };
                    sched.spawn(ThreadKind::Housekeeping, class, [core]);
                    if fifo {
                        fifo_runnable += 1;
                    }
                }
                Op::RunAndBlock | Op::RunAndYield => {
                    if let Some(tid) = sched.pick_next(core) {
                        let is_fifo = matches!(sched.thread(tid).class(), SchedClass::Fifo(_));
                        if fifo_runnable > 0 {
                            prop_assert!(is_fifo, "picked fair while FIFO runnable");
                        }
                        if matches!(op, Op::RunAndBlock) {
                            sched.block_current(core);
                            if is_fifo {
                                fifo_runnable -= 1;
                            }
                            blocked.push(tid);
                        } else {
                            sched.yield_current(core);
                        }
                    }
                }
                Op::WakeOldest => {
                    if !blocked.is_empty() {
                        let tid = blocked.remove(0);
                        sched.wake(tid);
                        if matches!(sched.thread(tid).class(), SchedClass::Fifo(_)) {
                            fifo_runnable += 1;
                        }
                    }
                }
            }
        }
    }

    /// Evacuating a core re-homes every thread exactly once and leaves
    /// nothing affine to the evacuated core.
    #[test]
    fn evacuation_is_total(n_threads in 1usize..20) {
        let mut sched = Scheduler::new();
        let cores = [CoreId(0), CoreId(1)];
        let mut spawned = Vec::new();
        for i in 0..n_threads {
            let class = if i % 2 == 0 { SchedClass::Fair } else { SchedClass::Fifo(1) };
            spawned.push(sched.spawn(ThreadKind::Housekeeping, class, cores));
        }
        let migrated = sched.evacuate(CoreId(0));
        for tid in &spawned {
            prop_assert!(!sched.thread(*tid).can_run_on(CoreId(0)));
        }
        // Everything that sat on core 0 migrated; nothing migrated twice.
        let mut seen = std::collections::BTreeSet::new();
        for tid in migrated {
            prop_assert!(seen.insert(tid));
        }
        // All threads remain schedulable on core 1.
        let mut picked = 0;
        while sched.pick_next(CoreId(1)).is_some() {
            sched.block_current(CoreId(1));
            picked += 1;
        }
        prop_assert_eq!(picked, n_threads);
    }
}
