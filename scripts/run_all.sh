#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the extensions)
# into results/all_experiments.txt, with a machine-readable JSON report
# per experiment under results/. Takes a few minutes; pass --quick to
# each binary for a fast smoke sweep.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p cg-bench
mkdir -p results
{
  for b in fig3 table2 table3 table4 fig6 fig7 fig8 fig9 fig10 table5 \
           security_eval cvm_comparison tdx_ablation planner_ablation \
           fault_sweep io_fastpath ivc_pingpong churn migrate fleet; do
    echo "=== $b ==="
    ./target/release/$b "$@" --json "results/$b.json"
  done
} | tee results/all_experiments.txt
# Cross-bench percentile aggregation: rebuild every exported histogram
# from its raw buckets and merge same-named distributions across runs.
./target/release/aggregate results/*.json | tee results/aggregate.txt
echo "JSON reports: results/{fig,table,*}.json"
