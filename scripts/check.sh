#!/usr/bin/env bash
# The tier-1 gate, run exactly as CI/the roadmap defines it. Fully
# offline: every dependency is a path dependency (see vendor/), so no
# network access is needed or attempted.
#
#   scripts/check.sh          # build + tests + clippy + fmt
#   scripts/check.sh --fast   # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release --workspace
fi

echo "== cargo test -q =="
cargo test -q --workspace

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy (deny warnings) =="
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== clippy not installed; skipping =="
fi

if cargo fmt --version >/dev/null 2>&1; then
  echo "== cargo fmt --check =="
  cargo fmt --all --check
else
  echo "== rustfmt not installed; skipping =="
fi

if [[ $fast -eq 0 ]]; then
  echo "== telemetry export smoke (same-seed runs must be byte-identical) =="
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  for run in a b; do
    ./target/release/table3 \
      --json "$tmp/$run.json" \
      --trace-out "$tmp/$run.trace.json" \
      --timeseries "$tmp/$run.csv" >/dev/null
  done
  cmp "$tmp/a.json" "$tmp/b.json"
  cmp "$tmp/a.trace.json" "$tmp/b.trace.json"
  cmp "$tmp/a.csv" "$tmp/b.csv"
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json,sys
for p in sys.argv[1:]:
    json.load(open(p))' "$tmp/a.json" "$tmp/a.trace.json"
  fi

  echo "== fault_sweep smoke (same seed + same plan must be byte-identical) =="
  for run in fa fb; do
    ./target/release/fault_sweep --quick --json "$tmp/$run.json" >/dev/null
  done
  cmp "$tmp/fa.json" "$tmp/fb.json"

  echo "== io_fastpath smoke (I/O-plane runs must be byte-identical) =="
  for run in ia ib; do
    ./target/release/io_fastpath --quick --json "$tmp/$run.json" \
      --attrib --trace-out "$tmp/$run.trace.json" >/dev/null
  done
  cmp "$tmp/ia.json" "$tmp/ib.json"
  cmp "$tmp/ia.trace.json" "$tmp/ib.trace.json"

  echo "== causal trace smoke (parseable, balanced spans, matched flows) =="
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/ia.trace.json" <<'PY'
import collections, json, sys

doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
phases = collections.Counter(e["ph"] for e in events)
# Spans export as complete "X" events: every begin carries its end, so
# stray "B"/"E" pairs mean an open span leaked into the export.
assert phases.get("B", 0) == phases.get("E", 0) == 0, phases
assert phases.get("X", 0) > 0, phases
# Flow arrows come in (s, f) pairs sharing one id.
starts = collections.Counter(e["id"] for e in events if e["ph"] == "s")
finishes = collections.Counter(e["id"] for e in events if e["ph"] == "f")
assert starts and starts == finishes, (starts, finishes)
assert all(c == 1 for c in starts.values()), starts
# At least one request must stitch across >= 3 execution contexts.
lanes = collections.defaultdict(set)
for e in events:
    if e["ph"] == "X" and "args" in e and "trace" in e["args"]:
        lanes[e["args"]["trace"]].add((e["pid"], e["tid"]))
best = max((len(v) for v in lanes.values()), default=0)
assert best >= 3, f"best request spans {best} contexts"
print(f"trace OK: {phases['X']} spans, {sum(starts.values())} flows, "
      f"best request crosses {best} contexts")
PY
  else
    echo "python3 not installed; skipping trace validation"
  fi

  echo "== ivc_pingpong smoke (channel + fault runs must be byte-identical) =="
  for run in va vb; do
    ./target/release/ivc_pingpong --quick --json "$tmp/$run.json" >/dev/null
  done
  cmp "$tmp/va.json" "$tmp/vb.json"

  echo "== churn smoke (elastic churn runs must be byte-identical) =="
  for run in ca cb; do
    ./target/release/churn --quick --json "$tmp/$run.json" >/dev/null
  done
  cmp "$tmp/ca.json" "$tmp/cb.json"

  echo "== migrate smoke (live-migration runs must be byte-identical) =="
  for run in ma mb; do
    ./target/release/migrate --quick --json "$tmp/$run.json" >/dev/null
  done
  cmp "$tmp/ma.json" "$tmp/mb.json"

  echo "== fleet smoke (serving-plane runs must be byte-identical) =="
  for run in fa fb; do
    ./target/release/fleet --quick --json "$tmp/$run.json" >/dev/null
  done
  cmp "$tmp/fa.json" "$tmp/fb.json"

  echo "== cargo doc (deny warnings; vendored stand-ins excluded) =="
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet \
    --exclude rand --exclude proptest --exclude criterion --exclude serde
fi

echo "== all checks passed =="
