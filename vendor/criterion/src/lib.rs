//! Offline, vendored mini-`criterion`.
//!
//! Exposes the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `iter`/`iter_batched`). Measurement is a simple
//! calibrated wall-clock loop reporting mean/min per-iteration time —
//! adequate for spotting order-of-magnitude regressions without the
//! statistical machinery (or dependencies) of upstream criterion.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing collector passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count that fills
    /// roughly 10ms per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).min(1 << 20);
        }
        self.iters_per_sample = iters;
        // Measure.
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over values produced by `setup`, excluding setup
    /// time from the calibration target (setup still runs inside the
    /// timed region boundary of upstream criterion's `PerIteration`; for
    /// this stub we simply time the routine on fresh inputs).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 16 {
                break;
            }
            iters = (iters * 2).min(1 << 16);
        }
        self.iters_per_sample = iters;
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            println!("{name:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<40} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

const SAMPLES: usize = 10;

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name} --");
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }

    /// Accepted for API parity; the stub ignores it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
