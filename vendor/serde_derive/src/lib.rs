//! No-op derive macros backing the vendored `serde` stub.
//!
//! Emits `impl serde::Serialize for T {}` (the stub trait has no
//! methods), parsing just enough of the item to find its name and
//! generic parameters. Written against `proc_macro` alone so it builds
//! offline.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and raw generic parameter names following
/// `struct`/`enum`/`union`.
fn type_name_and_generics(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive(Serialize): expected type name, got {other:?}"),
                };
                // Collect simple generic idents from `<...>` if present
                // (lifetimes and bounds are ignored; the catalogue types
                // are not generic today).
                let mut generics = Vec::new();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        tokens.next();
                        let mut depth = 1;
                        for tt in tokens.by_ref() {
                            match tt {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                TokenTree::Ident(id) if depth == 1 => generics.push(id.to_string()),
                                _ => {}
                            }
                        }
                    }
                }
                return (name, generics);
            }
        }
    }
    panic!("derive(Serialize): no struct/enum/union found");
}

fn empty_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let (name, generics) = type_name_and_generics(input);
    let code = if generics.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        format!("impl<{params}> {trait_path} for {name}<{params}> {{}}")
    };
    code.parse().expect("generated impl parses")
}

/// Derives the stub `Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Serialize", input)
}

/// Derives the stub `Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Deserialize<'_>", input)
}
