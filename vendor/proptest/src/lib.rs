//! Offline, vendored mini-`proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, range/tuple/collection strategies, `prop_oneof!`,
//! `prop_assert*!`, `ProptestConfig` — on a fully deterministic
//! generator so property tests reproduce bit-for-bit across runs and
//! machines. Failing cases are reported with their generated inputs
//! (there is no shrinking: the simulator's inputs are already small).

use std::cell::RefCell;
use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derives a generator from a test name and case index.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut state = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case fails.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
///
/// Unlike upstream proptest there is no shrinking: `generate` yields the
/// final value directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// A strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T: Debug> Union<T> {
    /// Builds a union from weighted alternatives.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! total weight must be > 0");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::fmt::Debug;

        /// Generates `Vec`s with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `BTreeSet`s with sizes drawn from `size` (best
        /// effort when the element domain is small).
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord + Debug,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = self.size.sample(rng);
                let mut set = BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < n && attempts < n * 20 + 100 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random `bool`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Length/size distribution for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_exclusive - self.lo).max(1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

thread_local! {
    static CURRENT_INPUTS: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Records a generated input's debug representation for failure reports.
#[doc(hidden)]
pub fn __record_input(name: &str, value: &dyn Debug) {
    CURRENT_INPUTS.with(|c| {
        use std::fmt::Write;
        let _ = writeln!(c.borrow_mut(), "    {name} = {value:?}");
    });
}

/// Drives the cases of one property test (used by `proptest!`).
#[doc(hidden)]
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        CURRENT_INPUTS.with(|c| c.borrow_mut().clear());
        let mut rng = TestRng::for_case(name, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        let inputs = CURRENT_INPUTS.with(|c| c.borrow().clone());
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "[proptest] {name}: case {case}/{} failed: {msg}\n  inputs:\n{inputs}",
                    config.cases
                );
            }
            Err(payload) => {
                eprintln!(
                    "[proptest] {name}: case {case}/{} panicked\n  inputs:\n{inputs}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Defines deterministic property tests. See crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), __rng);
                    $crate::__record_input(stringify!($arg), &$arg);
                )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Uniform (or weighted) choice between strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The glob-importable API surface, mirroring upstream proptest.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec((0u64..100, prop::bool::ANY), 1..20);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..10_000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn btree_set_hits_requested_size_when_domain_allows() {
        let mut rng = TestRng::for_case("set", 1);
        let s = prop::collection::btree_set(0u64..512, 30..31);
        let set = s.generate(&mut rng);
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = TestRng::for_case("oneof", 0);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u32..50, 1..10), flip in prop::bool::ANY) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(flip, flip);
            for x in xs {
                prop_assert!(x < 50, "x = {x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failure_reports_inputs() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |rng| {
            let v = (0u64..10).generate(rng);
            crate::__record_input("v", &v);
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
