//! Offline, vendored stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no network access, so the
//! handful of `rand` APIs the simulator uses are reimplemented here on a
//! deterministic xoshiro256++ core seeded through splitmix64. Streams do
//! not match upstream `rand` bit-for-bit, but that is irrelevant for the
//! simulator: all that matters is that a seed fully determines the
//! stream, which this guarantees (no `getrandom`, no platform entropy).

/// Low-level source of random 32/64-bit values.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let v = sm.next().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&v[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sampling distributions.
pub mod distributions {
    /// Uniform sampling over ranges.
    pub mod uniform {
        use crate::RngCore;

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Samples uniformly from `[lo, hi)` (or `[lo, hi]` when
            /// `inclusive`).
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let lo_w = lo as i128;
                        let hi_w = hi as i128;
                        let span = if inclusive {
                            (hi_w - lo_w + 1) as u128
                        } else {
                            (hi_w - lo_w) as u128
                        };
                        assert!(span > 0, "cannot sample from empty range");
                        // Multiply-shift mapping of a 64-bit draw onto the
                        // span; bias is < 2^-64 * span, irrelevant here.
                        let x = rng.next_u64() as u128;
                        let off = (x * span) >> 64;
                        (lo_w + off as i128) as $t
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + unit * (hi - lo)
            }
        }

        impl SampleUniform for f32 {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
                lo + unit * (hi - lo)
            }
        }

        /// Range expressions that can drive uniform sampling.
        pub trait SampleRange<T> {
            /// Samples a value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(*self.start(), *self.end(), true, rng)
            }
        }
    }

    use crate::RngCore;

    /// The "standard" distribution over a type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Values producible by [`Standard`].
    pub trait StandardSample {
        /// Draws one value.
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for u64 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for u32 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for bool {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a value from the standard distribution.
    fn gen<T: distributions::StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; perturb it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_and_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "draws should cover the unit interval");
    }

    #[test]
    fn single_element_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(rng.gen_range(5u32..6), 5);
        assert_eq!(rng.gen_range(5u32..=5), 5);
    }
}
