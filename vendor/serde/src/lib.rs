//! Offline, vendored stand-in for `serde`.
//!
//! The workspace only derives `Serialize` as forward-looking metadata on
//! the vulnerability catalogue; nothing serializes yet. This stub keeps
//! the trait and derive compiling without network access. If real
//! serialization is needed later, implement it here or swap in upstream
//! serde when a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (no-op in the vendored stub).
pub trait Serialize {}

/// Marker for deserializable types (no-op in the vendored stub).
pub trait Deserialize<'de> {}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    String,
    &'static str
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
