//! Demonstration of the paper's security claim: a co-resident attacker
//! extracts a victim's secret-dependent footprints on a shared core, and
//! gets nothing once the VMs are core-gapped.
//!
//! Run with: `cargo run --example attack_demo`

use coregap::sim::SimDuration;
use coregap::system::experiments::security::{run_attack, AttackScenario};

fn main() {
    println!("A victim CVM computes on a planted secret while an attacker VM");
    println!("probes the microarchitectural state of the core it runs on.\n");
    for scenario in AttackScenario::ALL {
        let outcome = run_attack(scenario, SimDuration::millis(100), 7);
        println!("== {}", scenario.label());
        println!("   attacker probes:            {}", outcome.probes);
        println!("   same-core observations:     {}", outcome.same_core_leaks);
        println!(
            "   secret-dependent leaks:     {}",
            outcome.same_core_secret_leaks
        );
        println!(
            "   shared-LLC observations:    {} (outside core gapping's scope)",
            outcome.llc_leaks
        );
        println!(
            "   core-gapping property holds: {}\n",
            outcome.core_gapping_holds()
        );
    }
    println!("The mitigation flush (applied by the monitor on every world switch)");
    println!("clears branch predictors and fill buffers but not caches or TLBs —");
    println!("which is why the shared-core CVM still leaks, and why the paper");
    println!("argues for not sharing cores at all.");
}
