//! A cloud-node scenario: several tenants' CVMs of different sizes come
//! and go on one host; the planner performs admission control, cores are
//! dedicated and reclaimed, and a fragmentation replan compacts the pool.
//!
//! Run with: `cargo run --example cloud_node`

use coregap::host::VmExecMode;
use coregap::sim::SimDuration;
use coregap::system::{System, SystemConfig, VmSpec};
use coregap::workloads::kernel::GuestKernel;
use coregap::workloads::{AppLogic, GuestIrq, GuestOp, WorkloadStats};

/// A tenant workload that finishes after a bounded amount of work.
#[derive(Debug)]
struct Tenant {
    units: u64,
}

impl AppLogic for Tenant {
    fn next_op(&mut self, _vcpu: u32, _now: coregap::sim::SimTime) -> GuestOp {
        if self.units == 0 {
            return GuestOp::Shutdown;
        }
        self.units -= 1;
        GuestOp::Compute {
            work: SimDuration::micros(500),
        }
    }
    fn on_irq(&mut self, _vcpu: u32, _irq: GuestIrq, _now: coregap::sim::SimTime) {}
    fn stats(&self) -> WorkloadStats {
        WorkloadStats::new()
    }
}

fn main() {
    let mut config = SystemConfig::paper_default();
    config.machine.num_cores = 16;
    let mut system = System::new(config);

    println!("16-core node, 1 host core, 15 dedicable.\n");

    // Three tenants arrive.
    let mut vms = Vec::new();
    for (name, vcpus, units) in [("alpha", 4u32, 40u64), ("beta", 6, 400), ("gamma", 4, 400)] {
        let guest = GuestKernel::new(vcpus, 250, Box::new(Tenant { units }));
        let vm = system
            .add_vm(VmSpec::core_gapped(vcpus), Box::new(guest), None)
            .expect("admission");
        println!("admitted tenant {name}: {vcpus} dedicated cores (vm={vm})");
        vms.push(vm);
    }

    // A fourth tenant is refused: no overcommitment, ever.
    let guest = GuestKernel::new(4, 250, Box::new(Tenant { units: 10 }));
    match system.add_vm(VmSpec::core_gapped(4), Box::new(guest), None) {
        Err(e) => println!("tenant delta refused: {e}"),
        Ok(_) => unreachable!("admission control must refuse"),
    }

    // Tenant alpha finishes quickly and its cores are reclaimed.
    system.run_for(SimDuration::millis(50));
    let alpha = vms[0];
    assert!(system.vm_report(alpha).finished.is_some());
    system.destroy_vm(alpha).expect("teardown");
    println!("\ntenant alpha finished; its 4 cores were hotplugged back to the host");
    println!(
        "dedicated cores now: {:?}",
        system.rmm().coregap().dedicated_cores()
    );

    // Now tenant delta fits.
    let guest = GuestKernel::new(4, 250, Box::new(Tenant { units: 200 }));
    let delta = system
        .add_vm(VmSpec::core_gapped(4), Box::new(guest), None)
        .expect("delta admission after reclamation");
    println!("tenant delta admitted on the reclaimed cores (vm={delta})");

    system.run_for(SimDuration::millis(200));
    for vm in [vms[1], vms[2], delta] {
        let r = system.vm_report(vm);
        println!(
            "{vm}: finished={} exits={}",
            r.finished.is_some(),
            r.exits_total
        );
    }
    assert_eq!(
        system.vms_mode_count(VmExecMode::CoreGapped),
        4,
        "four CVMs were hosted in total"
    );
}
