//! The two I/O paths of the paper's evaluation, side by side: emulated
//! virtio (exit-intensive) vs SR-IOV passthrough (exit-free data path),
//! each under shared-core and core-gapped execution.
//!
//! Run with: `cargo run --example io_paths --release`

use coregap::system::experiments::io::{run_netpipe, NetpipeConfig};

fn main() {
    let sizes = [64u64, 1500, 65536];
    println!("NetPIPE ping-pong over both device types (median RTT in us):\n");
    println!(
        "{:>9} {:>18} {:>18} {:>18} {:>18}",
        "bytes", "virtio/shared", "virtio/gapped", "sriov/shared", "sriov/gapped"
    );
    let mut results = Vec::new();
    for config in NetpipeConfig::ALL {
        results.push(run_netpipe(config, &sizes, 10, 42));
    }
    for &s in &sizes {
        print!("{s:>9}");
        for r in &results {
            print!(" {:>18.1}", r[&s].rtt_us);
        }
        println!();
    }
    println!();
    println!("virtio pays two host round trips per message (kick exit + completion");
    println!("injection), which cross-core RPC makes ~2x slower; SR-IOV moves data");
    println!("directly between guest memory and the NIC, leaving only the completion");
    println!("interrupt on the host path (the paper's fig. 8).");
}
