//! The structured trace & divergence-diagnosis harness, end to end:
//! record a run, render the trace tail, fingerprint the metrics, and
//! diff two same-seed runs — once clean, once with test-only
//! nondeterminism injected to show what a divergence report looks like.
//!
//! ```bash
//! cargo run --example trace_debugging
//! ```

use coregap::sim::SimDuration;
use coregap::system::{diff_same_seed_runs, System, SystemConfig, TraceOptions, VmSpec};
use coregap::workloads::coremark::CoremarkPro;
use coregap::workloads::kernel::GuestKernel;

fn build(inject: bool) -> System {
    let mut config = SystemConfig::small();
    config.num_host_cores = 1;
    config.inject_wakeup_nondeterminism = inject;
    let mut system = System::new(config);
    for _ in 0..3 {
        let guest = GuestKernel::new(
            2,
            1000,
            Box::new(CoremarkPro::new(2, SimDuration::micros(100))),
        )
        .with_console_writes(SimDuration::micros(25));
        system
            .add_vm(VmSpec::core_gapped(2), Box::new(guest), None)
            .unwrap();
    }
    system
}

fn main() {
    // 1. Record a run into a bounded ring and look at the tail.
    let mut system = build(false);
    system.configure_trace(TraceOptions::new().structured_ring(4096));
    system.run_for(SimDuration::millis(2));
    println!("=== last 15 trace records of a 2 ms run ===");
    print!("{}", system.structured_trace().render_tail(15));
    println!(
        "({} records captured, {} recorded in total)",
        system.structured_trace().len(),
        system.structured_trace().recorded()
    );
    println!(
        "metrics fingerprint: {:#018x}",
        system.metrics().fingerprint()
    );

    // 2. Same-seed runs are bit-identical — the diff comes back clean.
    let clean = diff_same_seed_runs(|| build(false), SimDuration::millis(2));
    println!("\n=== same-seed diff, stock configuration ===");
    println!("{}", clean.render());
    assert!(clean.is_deterministic());

    // 3. Inject HashMap-iteration-order nondeterminism into the wake-up
    //    scan (a test-only config flag) and diff again: the report names
    //    the first divergent event with time, sequence number, and core.
    //    Fresh HashMaps get fresh hash keys, so a handful of attempts
    //    always demonstrates a divergence.
    for attempt in 1..=8 {
        let bad = diff_same_seed_runs(|| build(true), SimDuration::millis(2));
        if bad.divergence.is_some() {
            println!("\n=== same-seed diff, injected nondeterminism (attempt {attempt}) ===");
            println!("{}", bad.render());
            return;
        }
    }
    println!("\nno divergence in 8 attempts — the laundering HashMaps kept agreeing");
}
