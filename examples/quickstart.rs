//! Quickstart: boot a core-gapped confidential VM, attest it, run a
//! CPU-bound workload, and inspect the metrics.
//!
//! Run with: `cargo run --example quickstart`

use coregap::sim::SimDuration;
use coregap::system::{System, SystemConfig, VmSpec};
use coregap::workloads::coremark::CoremarkPro;
use coregap::workloads::kernel::GuestKernel;

fn main() {
    // A 64-core AmpereOne-class machine with one host core; everything
    // else is dedicable to confidential VMs.
    let config = SystemConfig::paper_default();
    let mut system = System::new(config);

    // A 4-vCPU CVM running a CPU-intensive workload. Admission dedicates
    // four cores via the hotplug path and binds them to the realm.
    let vcpus = 4;
    let app = CoremarkPro::new(vcpus, SimDuration::micros(100));
    let guest = GuestKernel::new(vcpus, 250, Box::new(app));
    let vm = system
        .add_vm(VmSpec::core_gapped(vcpus), Box::new(guest), None)
        .expect("admission");

    // Before trusting the CVM, its owner verifies the attestation token
    // against the expected (core-gapping) RMM measurement.
    let challenge = 0x1234_5678;
    let token = system.attest(vm, challenge).expect("attestation");
    let ok = token.verify(
        &coregap::cca::PlatformCert::example(),
        system.rmm().platform_measurement(),
        challenge,
    );
    println!("attestation verified: {ok}");
    assert!(ok);

    // Run one simulated second.
    system.run_for(SimDuration::secs(1));

    let report = system.vm_report(vm);
    let iters = report.stats.counters.get("coremark.total_iterations");
    println!("guest work units completed: {iters}");
    println!("exits to host:              {}", report.exits_total);
    println!(
        "of which interrupt-related: {} (interrupt delegation keeps this near zero)",
        report.exits_interrupt
    );
    println!(
        "host core utilisation:      {:.2}%",
        system.metrics().host_utilization(0, SimDuration::secs(1)) * 100.0
    );
    println!(
        "dedicated cores:            {:?}",
        system.rmm().coregap().dedicated_cores()
    );
}
