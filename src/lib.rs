//! # coregap — core-gapped confidential VMs
//!
//! Umbrella crate for the `coregap` workspace: a Rust reproduction of
//! *“Sharing is leaking: blocking transient-execution attacks with
//! core-gapped confidential VMs”* (Castes & Baumann, ASPLOS 2024).
//!
//! This crate re-exports every workspace crate under a stable module path.
//! Most users want [`system`] (the top-level builder / experiment API);
//! see the `examples/` directory for runnable entry points.
//!
//! # Example
//!
//! ```
//! use coregap::system::SystemConfig;
//!
//! let config = SystemConfig::default();
//! assert!(config.machine.num_cores >= 2);
//! ```

pub use cg_attacks as attacks;
pub use cg_cca as cca;
pub use cg_core as system;
pub use cg_host as host;
pub use cg_machine as machine;
pub use cg_migrate as migrate;
pub use cg_rmm as rmm;
pub use cg_rpc as rpc;
pub use cg_sim as sim;
pub use cg_virtio as virtio;
pub use cg_workloads as workloads;
